"""Out-of-core pipeline: chunked ingest must be invisible to results.

The PR-10 acceptance properties:

* chunked ``extend`` (any chunk boundaries, any PointSource carrier) is
  bit-identical to one monolithic ``extend`` for EVERY registered
  backend — including weighted chunks on the buffered backends and
  delete-bearing streams on the fully-dynamic ones;
* the n=10^6 out-of-core matrix sweep stays within a small fixed
  memory budget (measured in a fresh subprocess via
  ``resource.getrusage``);
* a source-backed scenario cell equals the same stream fed as in-RAM
  batches, and its checkpoint cursor survives a simulated mid-stream
  kill byte-for-byte;
* snapshot restore through ``mmap_dir`` continues bit-identically to
  the in-RAM restore;
* ``replay_chunks`` equals the per-event ``replay`` path.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.api import (
    KCenterSession,
    ProblemSpec,
    UnsupportedOperationError,
    available_backends,
)
from repro.core.points import WeightedPointSet
from repro.persist import read_snapshot
from repro.scenarios import get_scenario, run_cell
from repro.scenarios.scenario import ScenarioInstance
from repro.store import PointStore, from_array
from repro.streaming import insertion_stream, replay, replay_chunks

DELTA = 64

#: session options per backend family (mirrors the scenario adapters)
BACKEND_OPTIONS = {
    "dynamic": {"delta_universe": DELTA, "s_override": 24},
    "dynamic-deterministic": {"delta_universe": DELTA, "s_override": 24},
    "sliding-window": {"window": 120, "r_min": 0.05, "r_max": 40.0},
    "mpc-two-round": {"num_machines": 4},
    "mpc-one-round": {"num_machines": 4},
    "mpc-multi-round": {"num_machines": 4},
    "cpp-mpc-deterministic": {"num_machines": 4},
    "cpp-mpc-randomized": {"num_machines": 4},
}

INTEGER_BACKENDS = {"dynamic", "dynamic-deterministic"}

#: buffered backends whose ``extend_weighted`` accepts weighted chunks
WEIGHTED_BACKENDS = ("offline", "mpc-two-round", "mpc-one-round",
                     "mpc-multi-round", "cpp-mpc-deterministic",
                     "cpp-mpc-randomized")

ALL_BACKENDS = sorted(available_backends())


def _spec(seed=7):
    return ProblemSpec(k=3, z=5, eps=0.5, dim=2, seed=seed)


def _stream(backend, seed, n=240):
    rng = np.random.default_rng(seed)
    if backend in INTEGER_BACKENDS:
        return rng.integers(1, DELTA, size=(n, 2)).astype(float)
    return rng.normal(size=(n, 2)) * 5.0


def _make(backend, seed=7):
    return KCenterSession.from_spec(
        _spec(seed), backend=backend, **BACKEND_OPTIONS.get(backend, {})
    )


def _random_pieces(pts, seed, cuts=6):
    """Split ``pts`` at random (nonempty-piece) boundaries."""
    rng = np.random.default_rng(seed)
    at = np.sort(rng.choice(np.arange(1, len(pts)), size=cuts,
                            replace=False))
    return [p for p in np.split(pts, at) if len(p)]


def _stats_no_wall(sess):
    out = sess.stats()
    out.pop("wall_time")
    return out


def _assert_same_state(a, b):
    cs_a, cs_b = a.coreset(), b.coreset()
    assert np.array_equal(cs_a.points, cs_b.points)
    assert np.array_equal(cs_a.weights, cs_b.weights)
    assert a.updates_seen == b.updates_seen
    assert a.solve().radius == b.solve().radius
    assert _stats_no_wall(a) == _stats_no_wall(b)


class TestChunkedEqualsMonolithic:
    """The tentpole property, for every registered backend."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("case", range(3))
    def test_random_chunk_boundaries(self, backend, case):
        stream = _stream(backend, seed=50 + case)
        mono = _make(backend)
        mono.extend(stream)
        chunked = _make(backend)
        chunked.extend(iter(_random_pieces(stream, seed=case)))
        _assert_same_state(mono, chunked)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_point_source_carrier(self, backend):
        stream = _stream(backend, seed=91)
        mono = _make(backend)
        mono.extend(stream)
        src = _make(backend)
        src.extend(from_array(stream), batch=37)
        _assert_same_state(mono, src)

    @pytest.mark.parametrize("backend", ["insertion-only", "offline",
                                         "sliding-window"])
    def test_store_source_carrier(self, backend, tmp_path):
        stream = _stream(backend, seed=17)
        store = PointStore.write(str(tmp_path / backend), (stream,),
                                 chunk_rows=53)
        mono = _make(backend)
        mono.extend(stream)
        ooc = _make(backend)
        ooc.extend(store)
        _assert_same_state(mono, ooc)

    @pytest.mark.parametrize("backend", WEIGHTED_BACKENDS)
    def test_weighted_chunks(self, backend):
        stream = _stream(backend, seed=23)
        w = np.random.default_rng(23).integers(1, 7, len(stream))
        one = _make(backend)
        one.extend(iter([(stream, w)]))
        many = _make(backend)
        pieces, lo = [], 0
        for p in _random_pieces(stream, seed=5):
            pieces.append((p, w[lo:lo + len(p)]))
            lo += len(p)
        many.extend(iter(pieces))
        _assert_same_state(one, many)
        # and the weights actually landed
        assert int(one.coreset().weights.sum()) == int(w.sum())

    def test_weighted_chunks_rejected_without_extend_weighted(self):
        stream = _stream("insertion-only", seed=2, n=40)
        w = np.ones(len(stream), dtype=np.int64)
        sess = _make("insertion-only")
        with pytest.raises(UnsupportedOperationError):
            sess.extend(iter([(stream, w)]))

    @pytest.mark.parametrize("backend", sorted(INTEGER_BACKENDS))
    def test_delete_bearing_stream(self, backend):
        stream = _stream(backend, seed=31)
        doomed = stream[60:100]
        mono = _make(backend)
        mono.extend(stream)
        mono.delete_many(doomed)
        chunked = _make(backend)
        chunked.extend(iter(_random_pieces(stream, seed=9)))
        chunked.delete_many(doomed)
        cs_a, cs_b = mono.coreset(), chunked.coreset()
        assert np.array_equal(cs_a.points, cs_b.points)
        assert np.array_equal(cs_a.weights, cs_b.weights)
        assert mono.updates_seen == chunked.updates_seen

    def test_updates_accounting_per_chunk(self):
        stream = _stream("insertion-only", seed=1, n=100)
        sess = _make("insertion-only")
        sess.extend(from_array(stream), batch=33)
        assert sess.updates_seen == 100


class TestSourceBackedScenario:
    def test_cell_equals_list_backed_instance(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path / "data"))
        inst = get_scenario("ooc-clustered-1m").make(quick=True, seed=0)
        ref = inst.reference()
        batches = [np.array(b) for b in inst.chunks()]
        inst_list = ScenarioInstance(inst.name, inst.spec, batches=batches,
                                     reference_radius=ref)
        a = run_cell("ooc-clustered-1m", "insertion-only", quick=True,
                     seed=0, instance=inst, reference=ref)
        b = run_cell("ooc-clustered-1m", "insertion-only", quick=True,
                     seed=0, instance=inst_list, reference=ref)
        da, db = dict(a.__dict__), dict(b.__dict__)
        for key in ("wall_time", "note"):  # run/provenance-only fields
            da.pop(key), db.pop(key)
        assert da == db
        assert a.status == "ok" and a.updates == inst.n

    def test_kill_and_resume_byte_match(self, tmp_path, monkeypatch):
        import repro.scenarios.matrix as matrix_mod

        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path / "data"))
        base = run_cell("ooc-clustered-1m", "insertion-only", quick=True,
                        seed=0)
        ckpt_dir = str(tmp_path / "ckpts")
        monkeypatch.setenv("REPRO_MATRIX_KILL_AFTER", "3")
        monkeypatch.setattr(matrix_mod, "_ckpt_writes", 0)
        with pytest.raises(SystemExit, match="simulated kill"):
            run_cell("ooc-clustered-1m", "insertion-only", quick=True,
                     seed=0, checkpoint_dir=ckpt_dir)
        leftover = os.listdir(ckpt_dir)
        assert leftover, "killed sweep must leave a mid-stream checkpoint"

        monkeypatch.delenv("REPRO_MATRIX_KILL_AFTER")
        resumed = run_cell("ooc-clustered-1m", "insertion-only", quick=True,
                           seed=0, checkpoint_dir=ckpt_dir)
        da, db = dict(base.__dict__), dict(resumed.__dict__)
        da.pop("wall_time"), db.pop("wall_time")
        assert da == db
        assert not os.listdir(ckpt_dir)  # clean finish removed the ckpt

    def test_scale_tag_excludes_from_default_sweep(self):
        from repro.scenarios.matrix import DEFAULT_EXCLUDED_TAGS

        assert "scale" in DEFAULT_EXCLUDED_TAGS
        for name in ("ooc-clustered-1m", "ooc-clustered-10m"):
            assert "scale" in get_scenario(name).tags


_RSS_SCRIPT = r"""
import json, resource, sys
from repro.scenarios import run_cell
cell = run_cell("ooc-clustered-1m", "insertion-only", quick=False, seed=0)
print(json.dumps({
    "status": cell.status,
    "updates": cell.updates,
    "radius_ratio": cell.radius_ratio,
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
}))
"""


@pytest.mark.slow
class TestPeakMemory:
    def test_ooc_sweep_1m_stays_out_of_core(self, tmp_path):
        """The n=10^6 sweep in a fresh subprocess: peak RSS must stay a
        small constant (the chunk working set), far under both the 2 GB
        acceptance budget and what an in-RAM pipeline with intermediate
        copies would show."""
        env = dict(os.environ)
        env["REPRO_DATA_DIR"] = str(tmp_path / "data")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", _RSS_SCRIPT], env=env,
            capture_output=True, text=True, timeout=600,
        )
        assert out.returncode == 0, out.stderr
        doc = json.loads(out.stdout.strip().splitlines()[-1])
        assert doc["status"] == "ok"
        assert doc["updates"] == 1_000_000
        assert doc["peak_rss_mb"] < 512, doc


class TestPersistMmapRestore:
    def _clustered(self, n, d=2, k=6, seed=3):
        rng = np.random.default_rng(seed)
        centers = rng.uniform(-40, 40, (k, d))
        return (centers[rng.integers(0, k, n)]
                + rng.normal(0, 0.6, (n, d)))

    def test_mmap_restore_continues_bit_identically(self, tmp_path):
        spec = ProblemSpec(k=6, z=20, eps=0.5, dim=2)
        pts = self._clustered(20_000)
        head, tail = pts[:14_000], pts[14_000:]
        snap = str(tmp_path / "s.snap")

        sess = KCenterSession(spec, backend="insertion-only")
        sess.extend(head)
        sess.save(snap)

        plain = KCenterSession.load(snap, backend="insertion-only")
        mdir = tmp_path / "maps"
        mdir.mkdir()
        mapped = KCenterSession.load(snap, backend="insertion-only",
                                     mmap_dir=str(mdir))
        assert os.listdir(mdir), "mmap_dir restore must extract the payload"

        for s in (sess, plain, mapped):
            s.extend(tail)
        _assert_same_state(sess, plain)
        _assert_same_state(sess, mapped)

    def test_read_snapshot_maps_large_members(self, tmp_path):
        spec = ProblemSpec(k=6, z=20, eps=0.5, dim=2)
        sess = KCenterSession(spec, backend="insertion-only")
        sess.extend(self._clustered(5_000))
        snap = str(tmp_path / "s.snap")
        sess.save(snap)

        _, pay_ram = read_snapshot(snap)
        mdir = tmp_path / "maps"
        mdir.mkdir()
        n_mapped = 0

        def compare(a, b, path=""):
            nonlocal n_mapped
            if isinstance(a, dict):
                assert set(a) == set(b), path
                for key in a:
                    compare(a[key], b[key], f"{path}/{key}")
            elif isinstance(a, np.ndarray):
                assert np.array_equal(a, np.asarray(b)), path
                if isinstance(b, np.memmap):
                    n_mapped += 1
            else:
                assert a == b, path

        _, pay_map = read_snapshot(snap, mmap_dir=str(mdir),
                                   mmap_threshold=1024)
        compare(pay_ram, pay_map)
        assert n_mapped > 0, "large STORED members must come back memmapped"


class TestReplayChunks:
    def test_matches_per_event_replay(self):
        pts = _stream("insertion-only", seed=77, n=300)
        by_event = _make("insertion-only")
        replay(insertion_stream(pts), by_event.backend)
        by_chunk = _make("insertion-only")
        n = replay_chunks(from_array(pts), by_chunk.backend, batch=41)
        assert n == 300
        cs_a, cs_b = by_event.coreset(), by_chunk.coreset()
        assert np.array_equal(cs_a.points, cs_b.points)
        assert np.array_equal(cs_a.weights, cs_b.weights)

    def test_insert_only_sink_fallback(self):
        pts = _stream("insertion-only", seed=5, n=50)

        class Sink:
            def __init__(self):
                self.rows = []

            def insert(self, p):
                self.rows.append(np.asarray(p, dtype=float))

        sink = Sink()
        assert replay_chunks(iter([pts]), sink, batch=7) == 50
        assert np.array_equal(np.vstack(sink.rows), pts)

    def test_rejects_weighted_chunks(self):
        pts = _stream("insertion-only", seed=6, n=20)
        w = np.ones(20, dtype=np.int64)
        sess = _make("insertion-only")
        with pytest.raises(ValueError):
            replay_chunks(iter([(pts, w)]), sess.backend)
