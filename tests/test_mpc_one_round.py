"""Tests for Algorithm 6 (randomized 1-round MPC) and Algorithm 7 (R-round)."""

import numpy as np
import pytest

from repro.core import verify_sandwich
from repro.mpc import (
    multi_round_coreset,
    one_round_coreset,
    partition_contiguous,
    partition_random,
    random_outlier_budget,
    two_round_coreset,
)
from repro.workloads import clustered_with_outliers


@pytest.fixture
def random_setup(rng):
    wl = clustered_with_outliers(400, k=3, z=10, d=2, rng=rng)
    P = wl.point_set()
    parts = partition_random(P, 6, rng)
    return P, parts


class TestRandomOutlierBudget:
    def test_caps_at_z(self):
        assert random_outlier_budget(n=100, m=2, z=3) == 3

    def test_whp_formula_used_when_smaller(self):
        b = random_outlier_budget(n=1024, m=100, z=10**6)
        assert b == int(np.ceil(6 * 10**6 / 100 + 3 * 10))

    def test_zero_z(self):
        assert random_outlier_budget(100, 4, 0) == 0

    def test_m_validation(self):
        with pytest.raises(ValueError):
            random_outlier_budget(10, 0, 1)


class TestOneRound:
    def test_single_round(self, random_setup):
        P, parts = random_setup
        res = one_round_coreset(parts, 3, 10, 0.5)
        assert res.stats.rounds == 1

    def test_coreset_valid(self, random_setup):
        P, parts = random_setup
        res = one_round_coreset(parts, 3, 10, 0.5)
        assert res.coreset.total_weight == P.total_weight
        assert verify_sandwich(P, res.coreset, 3, 10, res.eps_guarantee).ok

    def test_zprime_recorded(self, random_setup):
        P, parts = random_setup
        res = one_round_coreset(parts, 3, 10, 0.5)
        assert 0 <= res.extras["zprime"] <= 10

    def test_no_final_compress(self, random_setup):
        P, parts = random_setup
        res = one_round_coreset(parts, 3, 10, 0.5, final_compress=False)
        assert res.eps_guarantee == 0.5
        assert res.coreset.total_weight == P.total_weight

    def test_single_machine(self, small_set):
        res = one_round_coreset([small_set], 2, 4, 0.5)
        assert verify_sandwich(small_set, res.coreset, 2, 4, res.eps_guarantee).ok


class TestMultiRound:
    @pytest.mark.parametrize("R", [1, 2, 3])
    def test_valid_coreset_each_R(self, random_setup, R):
        P, parts = random_setup
        res = multi_round_coreset(parts, 3, 10, 0.2, rounds=R)
        assert res.stats.rounds == R
        assert res.coreset.total_weight == P.total_weight
        assert res.eps_guarantee == pytest.approx((1.2) ** R - 1)
        assert verify_sandwich(P, res.coreset, 3, 10, res.eps_guarantee).ok

    def test_beta_reduction(self, random_setup):
        P, parts = random_setup
        res = multi_round_coreset(parts, 3, 10, 0.2, rounds=2)
        assert res.extras["beta"] >= int(np.ceil(len(parts) ** 0.5))

    def test_R1_equals_all_to_coordinator(self, random_setup):
        P, parts = random_setup
        res = multi_round_coreset(parts, 3, 10, 0.2, rounds=1)
        # one round: every machine compresses once and ships to M1
        assert res.stats.rounds == 1

    def test_more_machines_than_needed(self, small_set):
        parts = partition_contiguous(small_set, 9)
        res = multi_round_coreset(parts, 2, 4, 0.2, rounds=2)
        assert res.coreset.total_weight == small_set.total_weight

    def test_rounds_validation(self, small_set):
        with pytest.raises(ValueError):
            multi_round_coreset([small_set], 2, 4, 0.2, rounds=0)

    def test_single_machine(self, small_set):
        res = multi_round_coreset([small_set], 2, 4, 0.2, rounds=2)
        assert res.coreset.total_weight == small_set.total_weight


class TestCrossAlgorithmConsistency:
    def test_all_three_agree_on_radius(self, rng):
        """All MPC algorithms' coresets give consistent radii on the same
        input (within their guarantees)."""
        from repro.core import charikar_greedy
        wl = clustered_with_outliers(300, k=2, z=6, d=2, rng=rng)
        P = wl.point_set()
        parts = partition_random(P, 4, rng)
        radii = {}
        for name, res in (
            ("two", two_round_coreset(parts, 2, 6, 0.3)),
            ("one", one_round_coreset(parts, 2, 6, 0.3)),
            ("multi", multi_round_coreset(parts, 2, 6, 0.3, rounds=2)),
        ):
            radii[name] = charikar_greedy(res.coreset, 2, 6).radius
        vals = list(radii.values())
        assert max(vals) <= 10 * min(vals) + 1e-9, radii
