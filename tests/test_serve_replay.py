"""The replay load-generation client: reports, wires, CLI, floors."""

import http.client
import json

import pytest

from repro.scenarios import get_scenario
from repro.serve import ReproServer, ServeConfig
from repro.serve.replay import ReplayError, main, replay


def _scenario_points(name="clustered-baseline"):
    return len(get_scenario(name).make(quick=True, seed=0).points)


class TestReplay:
    def test_self_hosted_report(self):
        report = replay(sessions=4, threads=2, batch=100, quick=True)
        assert report["suite"] == "serve-replay"
        assert report["self_hosted"] is True
        assert report["sessions"] == 4 and report["threads"] == 2
        assert report["wire"] == "binary"
        assert report["total_points"] == 4 * _scenario_points()
        assert report["stream_wall_s"] > 0
        assert report["points_per_s"] > 0
        ext = report["latency"]["extend"]
        assert ext["count"] == report["total_points"] // 100
        assert ext["p50_s"] <= ext["p95_s"] <= ext["p99_s"] <= ext["max_s"]
        assert report["latency"]["solve"]["count"] == 4

    def test_json_wire_and_no_solve(self):
        report = replay(sessions=2, threads=1, batch=200, quick=True,
                        json_wire=True, solve=False, reference=False)
        assert report["wire"] == "json"
        assert report["latency"]["solve"] == {"count": 0}

    def test_against_external_server_keep_sessions(self, tmp_path):
        with ReproServer(ServeConfig(
                port=0, spool_dir=str(tmp_path / "spool"))) as srv:
            report = replay(url=srv.url, sessions=3, threads=1, batch=200,
                            quick=True, solve=False, keep_sessions=True)
            assert report["self_hosted"] is False
            conn = http.client.HTTPConnection(
                "127.0.0.1", srv.port, timeout=30)
            try:
                conn.request("GET", "/sessions")
                doc = json.loads(conn.getresponse().read())
            finally:
                conn.close()
            names = {s["name"] for s in doc["sessions"]}
            assert names == {f"replay-clustered-baseline-{i:04d}"
                             for i in range(3)}
            # sessions carry the scenario's reference radius for the
            # radius-ratio gauge
            assert all(s["reference_radius"] > 0 for s in doc["sessions"])

    def test_sessions_deleted_by_default(self, tmp_path):
        with ReproServer(ServeConfig(
                port=0, spool_dir=str(tmp_path / "spool"))) as srv:
            replay(url=srv.url, sessions=2, threads=1, batch=200,
                   quick=True, solve=False, reference=False)
            assert srv.manager.session_count() == 0

    def test_bad_url_raises(self):
        with pytest.raises(ReplayError):
            replay(url="ftp://example.invalid", sessions=1)

    def test_worker_failure_surfaces_not_hangs(self, tmp_path):
        from repro.api import ProblemSpec

        with ReproServer(ServeConfig(
                port=0, spool_dir=str(tmp_path / "spool"))) as srv:
            # occupy one of the replay names: the worker's PUT hits 409
            # and the failure must surface as ReplayError, not a hang
            srv.manager.create("replay-clustered-baseline-0000",
                               ProblemSpec(k=3, z=4, eps=0.5, dim=2, seed=0),
                               "insertion-only")
            with pytest.raises(ReplayError, match="409"):
                replay(url=srv.url, sessions=2, threads=2, batch=200,
                       quick=True, solve=False, reference=False)


class TestCLI:
    def test_main_writes_report_and_enforces_floor(self, tmp_path, capsys):
        out = tmp_path / "replay.json"
        rc = main(["--quick", "--sessions", "2", "--threads", "1",
                   "--batch", "200", "--no-solve", "--json", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["sessions"] == 2
        assert "points/s" in capsys.readouterr().out

    def test_min_throughput_floor_fails(self, capsys):
        rc = main(["--quick", "--sessions", "1", "--threads", "1",
                   "--batch", "200", "--no-solve",
                   "--min-throughput", "1e15"])
        assert rc == 1
        assert "below the --min-throughput floor" in capsys.readouterr().err
