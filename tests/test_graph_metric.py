"""Tests for general metric spaces: PrecomputedMetric + graph workloads.

The paper's algorithms are stated for arbitrary doubling metrics; these
tests run the whole stack (Greedy, MBC, streaming, MPC) on a shortest-path
metric of a grid graph.
"""

import numpy as np
import pytest

from repro.core import (
    PrecomputedMetric,
    brute_force_opt,
    charikar_greedy,
    mbc_construction,
    verify_covering_property,
    verify_weight_property,
)
from repro.workloads import (
    estimate_doubling_dimension,
    graph_clustered_workload,
    grid_graph_metric,
)


@pytest.fixture(scope="module")
def grid_metric():
    return grid_graph_metric(8, 8, perturb=0.1, rng=np.random.default_rng(0))


@pytest.fixture
def graph_workload(grid_metric, rng):
    P, mask, hubs = graph_clustered_workload(
        grid_metric, k=2, z=3, cluster_radius=2.5, rng=rng
    )
    return P, mask, hubs


class TestPrecomputedMetric:
    def test_lookup(self):
        D = np.array([[0.0, 1.0, 3.0], [1.0, 0.0, 2.0], [3.0, 2.0, 0.0]])
        m = PrecomputedMetric(D)
        a = np.array([[0.0], [2.0]])
        b = np.array([[1.0]])
        assert m.pairwise(a, b)[:, 0].tolist() == [1.0, 2.0]
        assert m.distance([0], [2]) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PrecomputedMetric(np.array([[0.0, 1.0], [2.0, 0.0]]))  # asymmetric
        with pytest.raises(ValueError):
            PrecomputedMetric(np.array([[1.0]]))  # nonzero diagonal
        with pytest.raises(ValueError):
            PrecomputedMetric(-np.ones((2, 2)))

    def test_id_range_checked(self):
        m = PrecomputedMetric(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            m.pairwise(np.array([[5.0]]), np.array([[0.0]]))

    def test_multi_column_rejected(self):
        m = PrecomputedMetric(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            m.pairwise(np.zeros((1, 2)), np.zeros((1, 2)))

    def test_doubling_override(self, grid_metric):
        assert grid_metric.doubling_dimension(1) == 2


class TestGridGraphMetric:
    def test_unweighted_distances(self):
        m = grid_graph_metric(3, 3)
        # corner to corner of a 3x3 grid: manhattan distance 4
        assert m.D.max() == 4.0
        assert m.n_elements == 9

    def test_triangle_inequality_sampled(self, grid_metric, rng):
        D = grid_metric.D
        n = len(D)
        for _ in range(200):
            i, j, k = rng.integers(0, n, 3)
            assert D[i, j] <= D[i, k] + D[k, j] + 1e-9

    def test_doubling_dimension_small(self, grid_metric, rng):
        dd = estimate_doubling_dimension(grid_metric, trials=16, rng=rng)
        assert dd <= 4.0  # grid graphs are genuinely low-dimensional


class TestAlgorithmsOnGraphMetric:
    def test_charikar_certificate(self, grid_metric, graph_workload):
        P, mask, hubs = graph_workload
        sub = P.subset(np.arange(min(len(P), 14)))
        opt = brute_force_opt(sub, 2, 1, grid_metric, max_points=14).radius
        res = charikar_greedy(sub, 2, 1, grid_metric)
        assert opt <= res.radius + 1e-9 <= 3 * opt + 1e-6

    def test_mbc_on_graph(self, grid_metric, graph_workload):
        P, mask, hubs = graph_workload
        z = int(mask.sum())
        mbc = mbc_construction(P, 2, z, 0.5, grid_metric)
        assert verify_weight_property(P, mbc.coreset).ok
        assert verify_covering_property(
            P, mbc, mbc.mini_ball_radius, grid_metric
        ).ok
        assert mbc.size <= len(P)

    def test_planted_structure_recovered(self, grid_metric, graph_workload):
        """The greedy radius with the planted z matches the planted
        cluster radius scale, far below the no-outlier radius."""
        P, mask, hubs = graph_workload
        z = int(mask.sum())
        r_with = charikar_greedy(P, 2, z, grid_metric).radius
        r_without = charikar_greedy(P, 2, 0, grid_metric).radius
        assert r_with <= r_without

    def test_streaming_on_graph_metric(self, grid_metric, graph_workload):
        from repro.streaming import InsertionOnlyCoreset
        P, mask, _ = graph_workload
        z = int(mask.sum())
        st = InsertionOnlyCoreset(2, z, 1.0, d=2, metric=grid_metric)
        st.extend(P.points)
        assert st.coreset().total_weight == len(P)

    def test_mpc_on_graph_metric(self, grid_metric, graph_workload):
        from repro.mpc import partition_contiguous, two_round_coreset
        P, mask, _ = graph_workload
        z = int(mask.sum())
        parts = partition_contiguous(P, 3)
        res = two_round_coreset(parts, 2, z, 0.5, metric=grid_metric)
        assert res.coreset.total_weight == P.total_weight


class TestGraphWorkload:
    def test_mask_and_sizes(self, graph_workload):
        P, mask, hubs = graph_workload
        assert mask.sum() == 3
        assert len(hubs) == 2

    def test_validation(self, grid_metric, rng):
        with pytest.raises(ValueError):
            graph_clustered_workload(grid_metric, k=0, z=1, cluster_radius=1,
                                     rng=rng)
