"""Tests for the appendix geometry checks (Lemmas 37-41)."""

import pytest

from repro.lowerbounds import claim38_check, claim39_radius, lemma41_gap

ADMISSIBLE = [(1, 1 / 8), (1, 1 / 16), (1, 1 / 32), (2, 1 / 16), (2, 1 / 32), (3, 1 / 24)]


class TestLemma41:
    @pytest.mark.parametrize("d,eps", ADMISSIBLE)
    def test_strictly_positive_gap(self, d, eps):
        assert lemma41_gap(d, eps) > 0

    def test_gap_shrinks_with_dimension(self):
        # larger d tightens the inequality at comparable lambda
        assert lemma41_gap(3, 1 / 24) < lemma41_gap(1, 1 / 16)


class TestClaim38:
    @pytest.mark.parametrize("d,eps", ADMISSIBLE)
    def test_cross_balls_cover(self, d, eps):
        ok, margin = claim38_check(d, eps)
        assert ok and margin >= -1e-9


class TestClaim39:
    @pytest.mark.parametrize("d,eps", ADMISSIBLE)
    def test_containment_slack_nonnegative(self, d, eps):
        slack, cover = claim39_radius(d, eps)
        assert slack >= -1e-9
        assert cover > 0
