"""Unit tests for repro.core.solver."""

import numpy as np
import pytest

from repro.core import (
    WeightedPointSet,
    brute_force_opt,
    charikar_greedy,
    continuous_opt_1d,
    coverage_radius,
    solve_kcenter_outliers,
    solve_via_coreset,
)
from repro.core.mbc import mbc_construction


class TestBruteForce:
    def test_single_cluster(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [1.0], [2.0]]))
        # centre on the middle point covers within 1
        assert brute_force_opt(P, 1, 0).radius == pytest.approx(1.0)

    def test_outlier_removes_extreme(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [1.0], [100.0]]))
        assert brute_force_opt(P, 1, 1).radius == pytest.approx(1.0)

    def test_k_two(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [1.0], [10.0], [11.0]]))
        assert brute_force_opt(P, 2, 0).radius == pytest.approx(1.0)

    def test_weighted_outliers(self):
        P = WeightedPointSet(np.array([[0.0], [100.0]]), [2, 3])
        # neither point's weight fits in z=1, so both must be covered
        assert brute_force_opt(P, 1, 1).radius == pytest.approx(100.0)
        # z=2 lets the weight-2 point at 0 be dropped
        assert brute_force_opt(P, 1, 2).radius == pytest.approx(0.0)

    def test_total_weight_at_most_z(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [9.0]]))
        assert brute_force_opt(P, 1, 2).radius == 0.0

    def test_max_points_guard(self, rng):
        P = WeightedPointSet.from_points(rng.normal(size=(20, 2)))
        with pytest.raises(ValueError):
            brute_force_opt(P, 2, 0)

    def test_duplicate_coordinates_handled(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [0.0], [5.0]]))
        assert brute_force_opt(P, 2, 0).radius == pytest.approx(0.0)


class TestContinuous1D:
    def test_matches_half_span_k1(self):
        P = WeightedPointSet.from_points(np.array([0.0, 4.0, 10.0]))
        assert continuous_opt_1d(P, 1, 0) == pytest.approx(5.0)

    def test_outlier(self):
        P = WeightedPointSet.from_points(np.array([0.0, 4.0, 100.0]))
        assert continuous_opt_1d(P, 1, 1) == pytest.approx(2.0)

    def test_k2(self):
        P = WeightedPointSet.from_points(np.array([0.0, 1.0, 10.0, 12.0]))
        assert continuous_opt_1d(P, 2, 0) == pytest.approx(1.0)

    def test_weighted(self):
        P = WeightedPointSet(np.array([[0.0], [10.0]]), [3, 3])
        # neither weight-3 point fits in z=2: cover both from the midpoint
        assert continuous_opt_1d(P, 1, 2) == pytest.approx(5.0)
        # z=3 lets one point be dropped entirely
        assert continuous_opt_1d(P, 1, 3) == pytest.approx(0.0)

    def test_at_most_z_weight(self):
        P = WeightedPointSet.from_points(np.array([0.0, 1.0]))
        assert continuous_opt_1d(P, 1, 2) == 0.0

    def test_rejects_2d(self, tiny_set):
        with pytest.raises(ValueError):
            continuous_opt_1d(tiny_set, 1, 0)

    def test_at_most_discrete(self, rng):
        """Continuous optimum <= discrete (centers from P) optimum."""
        xs = np.sort(rng.uniform(0, 20, size=10))
        P = WeightedPointSet.from_points(xs)
        cont = continuous_opt_1d(P, 2, 1)
        disc = brute_force_opt(P, 2, 1).radius
        assert cont <= disc + 1e-9
        assert cont >= disc / 2 - 1e-9  # and within the classic factor 2

    def test_unit_line_k_z(self):
        """k+z+1 unit-spaced points: optimum exactly 1/2 (Lemma 15)."""
        for k, z in [(2, 3), (3, 1)]:
            P = WeightedPointSet.from_points(np.arange(1.0, k + z + 2))
            assert continuous_opt_1d(P, k, z) == pytest.approx(0.5)


class TestSolverFrontend:
    def test_methods_agree_on_easy_instance(self, tiny_set):
        b = solve_kcenter_outliers(tiny_set, 2, 1, method="brute")
        g = solve_kcenter_outliers(tiny_set, 2, 1, method="greedy3")
        assert b.radius <= g.radius + 1e-9 <= 3 * b.radius + 1e-6

    def test_unknown_method(self, tiny_set):
        with pytest.raises(ValueError):
            solve_kcenter_outliers(tiny_set, 2, 1, method="magic")

    def test_solve_via_coreset_quality(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.3)
        sol = solve_via_coreset(mbc.coreset, 2, 4)
        full = charikar_greedy(small_set, 2, 4)
        # both 3-approximations of optima within (1 +- eps) of each other
        assert sol.radius <= 3 * (1 + 0.3) * full.radius + 1e-9
        assert sol.radius * 3 * (1 + 0.3) >= full.radius / 3 - 1e-9

    def test_solution_covers_with_outliers(self, small_set):
        sol = solve_kcenter_outliers(small_set, 2, 4)
        r = coverage_radius(small_set, sol.centers, 4)
        assert r <= sol.radius + 1e-9
