"""Tests for the repro.engine execution layer."""

import numpy as np
import pytest

from repro.engine import (
    Executor,
    ProcessExecutor,
    ResultsCache,
    SerialExecutor,
    ThreadExecutor,
    derive_rngs,
    derive_seeds,
    get_executor,
    map_machines,
)
from repro.mpc import Machine


def _square(x):
    return x * x  # module-level so ProcessExecutor can pickle it


def _draw(seed_seq):
    return np.random.default_rng(seed_seq).integers(0, 1 << 30)


EXECUTORS = [SerialExecutor(), ThreadExecutor(jobs=3), ProcessExecutor(jobs=2)]


class TestExecutors:
    @pytest.mark.parametrize("ex", EXECUTORS, ids=lambda e: e.name)
    def test_map_order_preserved(self, ex):
        assert ex.map(_square, range(17)) == [x * x for x in range(17)]

    @pytest.mark.parametrize("ex", EXECUTORS, ids=lambda e: e.name)
    def test_map_empty_and_singleton(self, ex):
        assert ex.map(_square, []) == []
        assert ex.map(_square, [7]) == [49]

    def test_protocol_conformance(self):
        for ex in EXECUTORS:
            assert isinstance(ex, Executor)

    def test_bad_jobs(self):
        with pytest.raises(ValueError):
            ThreadExecutor(jobs=0)

    def test_pool_reused_across_maps(self):
        ex = ThreadExecutor(jobs=2)
        ex.map(_square, range(4))
        pool = ex._pool
        ex.map(_square, range(4))
        assert ex._pool is pool  # no per-map pool churn
        ex.close()
        assert ex._pool is None

    def test_context_manager_closes(self):
        with ThreadExecutor(jobs=2) as ex:
            assert ex.map(_square, [2, 3]) == [4, 9]
        assert ex._pool is None
        with SerialExecutor() as ex:
            assert ex.map(_square, [2]) == [4]


class TestGetExecutor:
    def test_default_serial(self):
        assert isinstance(get_executor(), SerialExecutor)
        assert isinstance(get_executor(None), SerialExecutor)

    def test_names(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)

    def test_inline_jobs(self):
        ex = get_executor("thread:5")
        assert isinstance(ex, ThreadExecutor) and ex.jobs == 5

    def test_inline_jobs_conflict(self):
        with pytest.raises(ValueError):
            get_executor("thread:5", jobs=3)
        assert get_executor("thread:5", jobs=5).jobs == 5

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            get_executor("gpu")

    def test_instance_passthrough(self):
        ex = ThreadExecutor(jobs=2)
        assert get_executor(ex) is ex

    def test_bad_type(self):
        with pytest.raises(TypeError):
            get_executor(3.14)


class TestSeedDerivation:
    def test_deterministic(self):
        a = [s.generate_state(4).tolist() for s in derive_seeds(42, 5)]
        b = [s.generate_state(4).tolist() for s in derive_seeds(42, 5)]
        assert a == b

    def test_children_differ(self):
        states = {tuple(s.generate_state(4)) for s in derive_seeds(0, 10)}
        assert len(states) == 10

    def test_executor_independent(self):
        """Per-task draws depend only on (seed, index), not the executor."""
        seeds = derive_seeds(7, 8)
        draws = {ex.name: ex.map(_draw, seeds) for ex in EXECUTORS}
        assert draws["serial"] == draws["thread"] == draws["process"]

    def test_derive_rngs(self):
        r1 = [g.random() for g in derive_rngs(3, 4)]
        r2 = [g.random() for g in derive_rngs(3, 4)]
        assert r1 == r2

    def test_negative_n(self):
        with pytest.raises(ValueError):
            derive_seeds(0, -1)


class TestMapMachines:
    @pytest.mark.parametrize("ex", EXECUTORS, ids=lambda e: e.name)
    def test_charging_in_caller(self, ex):
        """Accounting lands on the caller's Machine objects, in order,
        under every executor."""
        machines = [Machine(i) for i in range(6)]
        results = map_machines(
            ex, _square, list(range(6)),
            machines=machines,
            charge=lambda mach, task, res: mach.charge(res),
        )
        assert results == [x * x for x in range(6)]
        assert [m.peak_items for m in machines] == [x * x for x in range(6)]

    def test_charge_requires_machines(self):
        with pytest.raises(ValueError):
            map_machines(None, _square, [1], charge=lambda *a: None)

    def test_no_charge_is_plain_map(self):
        assert map_machines("serial", _square, [2, 3]) == [4, 9]


class TestResultsCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultsCache(str(tmp_path))
        payload = [{"rows": [1, 2, 3]}]
        cache.put("E1", {"n": 800}, payload)
        assert cache.get("E1", {"n": 800}) == payload

    def test_miss(self, tmp_path):
        cache = ResultsCache(str(tmp_path))
        assert cache.get("E1", {"n": 800}) is None

    def test_key_depends_on_params(self):
        assert ResultsCache.key("E1", {"n": 800}) != ResultsCache.key("E1", {"n": 900})
        assert ResultsCache.key("E1", {"n": 800}) == ResultsCache.key("E1", {"n": 800})

    def test_contains(self, tmp_path):
        cache = ResultsCache(str(tmp_path))
        assert ("E2", {"z": 1}) not in cache
        cache.put("E2", {"z": 1}, [1])
        assert ("E2", {"z": 1}) in cache

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultsCache(str(tmp_path))
        path = cache.put("E3", None, [1, 2])
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert cache.get("E3", None) is None

    def test_json_sidecar(self, tmp_path):
        import json

        cache = ResultsCache(str(tmp_path))
        pkl = cache.put("E4", {"n": 5}, [1, 2, 3])
        with open(pkl.replace(".pkl", ".json")) as f:
            meta = json.load(f)
        assert meta["experiment"] == "E4"
        assert meta["params"] == {"n": 5}
        assert meta["rows"] == 3
