"""Unit tests for repro.geometry.packing (Lemma 6 and friends)."""

import numpy as np
import pytest

from repro.core import WeightedPointSet, brute_force_opt
from repro.geometry import (
    doubling_cover_count,
    grid_cell_bound,
    packing_bound,
    separated_subset,
)


class TestPackingBound:
    def test_formula(self):
        from math import ceil
        assert packing_bound(2, 3, opt=1.0, delta=0.5, d=2) == 2 * ceil(8) ** 2 + 3

    def test_zero_opt(self):
        assert packing_bound(2, 3, opt=0.0, delta=0.5, d=2) == 5

    def test_delta_positive_required(self):
        with pytest.raises(ValueError):
            packing_bound(1, 0, 1.0, 0.0, 1)

    def test_lemma6_witnessed_empirically(self, rng):
        """Any delta-separated subset of a clustered instance respects the
        Lemma 6 bound computed from the true optimum."""
        pts = np.concatenate([
            rng.normal(0, 0.5, (40, 2)), rng.normal(10, 0.5, (40, 2)),
            rng.uniform(50, 60, (2, 2)),
        ])
        P = WeightedPointSet.from_points(pts[rng.choice(len(pts), 12, replace=False)])
        k, z = 2, 2
        opt = brute_force_opt(P, k, z).radius
        for delta_frac in (0.25, 0.5, 1.0):
            delta = max(opt * delta_frac, 1e-9)
            sep = separated_subset(P.points, delta)
            assert len(sep) <= packing_bound(k, z, opt, delta, 2)


class TestGridCellBound:
    def test_formula(self):
        from math import ceil, sqrt
        assert grid_cell_bound(2, 3, 0.5, 2) == 2 * ceil(8 * sqrt(2)) ** 2 + 3

    def test_eps_positive(self):
        with pytest.raises(ValueError):
            grid_cell_bound(1, 0, 0.0, 1)


class TestDoublingCoverCount:
    def test_powers(self):
        assert doubling_cover_count(2.0, 2) == 4
        assert doubling_cover_count(4.0, 2) == 16
        assert doubling_cover_count(1.0, 3) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            doubling_cover_count(0.5, 2)


class TestSeparatedSubset:
    def test_pairwise_separation(self, rng):
        pts = rng.uniform(0, 10, size=(100, 2))
        idx = separated_subset(pts, 1.0)
        from scipy.spatial.distance import pdist
        if len(idx) > 1:
            assert pdist(pts[idx]).min() > 1.0

    def test_maximality_covering(self, rng):
        pts = rng.uniform(0, 10, size=(100, 2))
        idx = separated_subset(pts, 1.0)
        from scipy.spatial.distance import cdist
        d = cdist(pts, pts[idx]).min(axis=1)
        assert d.max() <= 1.0 + 1e-9

    def test_empty(self):
        assert len(separated_subset(np.zeros((0, 2)), 1.0)) == 0

    def test_single_point(self):
        assert separated_subset(np.zeros((1, 2)), 1.0).tolist() == [0]
