"""Tests for the perf-trajectory dashboard and the series bench gate.

``benchmarks/`` is a script directory, not a package, so the modules
under test (``trajectory.py``, ``check_bench_schema.py``) are loaded by
file path.
"""

import importlib.util
import json
import os

import pytest

_BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks")


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_BENCH_DIR, f"{name}.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


trajectory = _load("trajectory")
check = _load("check_bench_schema")


def _entry(eid, new_s, params=None, **extra):
    return {"id": eid, "params": params or {"n": 1000}, "new_s": new_s,
            "old_s": None, **extra}


def _doc(entries, suite="core-kernels"):
    return {"suite": suite, "quick": False, "entries": entries}


def _series_files(tmp_path, docs):
    """Write ``docs`` as BENCH_PR1.json, BENCH_PR2.json, ... under tmp."""
    for i, doc in enumerate(docs, start=1):
        (tmp_path / f"BENCH_PR{i}.json").write_text(json.dumps(doc))
    return str(tmp_path)


# a healthy synthetic 3-PR series: steady entry + one that improves
HEALTHY = [
    _doc([_entry("steady", 1.0), _entry("shrinking", 4.0)]),
    _doc([_entry("steady", 1.05), _entry("shrinking", 2.0)]),
    _doc([_entry("steady", 0.95), _entry("shrinking", 1.0),
          _entry("newcomer", 0.5)]),
]


class TestSeriesGate:
    def test_improvement_and_steady_pass(self):
        problems, notes = check.compare_timings(
            HEALTHY[:2], HEALTHY[2], max_slowdown=1.25)
        assert problems == []
        assert any("newcomer" in n and "only in candidate" in n
                   for n in notes)

    def test_regression_is_flagged(self):
        bad = _doc([_entry("steady", 5.0), _entry("shrinking", 1.0)])
        problems, _ = check.compare_timings(HEALTHY[:2], bad,
                                            max_slowdown=1.25)
        assert len(problems) == 1
        assert "steady" in problems[0] and "regressed" in problems[0]

    def test_best_of_window_keeps_the_fastest_baseline(self):
        # PR2 was slow (2.0); best-of-last-3 still holds the gate at
        # PR1's 1.0, so a 1.6 candidate regresses even though it beats
        # the immediately preceding PR
        docs = [_doc([_entry("e", 1.0)]), _doc([_entry("e", 2.0)])]
        cand = _doc([_entry("e", 1.6)])
        problems, _ = check.compare_timings(docs, cand, max_slowdown=1.25)
        assert problems and "1.60x" in problems[0]
        # with the window truncated to the slow PR only, it passes
        problems, _ = check.compare_timings(docs, cand, max_slowdown=1.25,
                                            best_of=1)
        assert problems == []

    def test_dropped_entry_is_an_error(self):
        cand = _doc([_entry("steady", 1.0)])  # "shrinking" gone
        problems, _ = check.compare_timings(HEALTHY[:2], cand,
                                            max_slowdown=1.25)
        assert any("shrinking" in p and "dropped" in p for p in problems)

    def test_type_drift_is_an_error(self):
        cand = _doc([_entry("steady", "fast!"), _entry("shrinking", 1.0)])
        problems, _ = check.compare_timings(HEALTHY[:2], cand,
                                            max_slowdown=1.25)
        assert any("steady" in p and "positive number" in p
                   and "str" in p for p in problems)

    def test_params_change_is_a_note_not_an_error(self):
        cand = _doc([_entry("steady", 99.0, params={"n": 2000}),
                     _entry("shrinking", 1.0)])
        problems, notes = check.compare_timings(HEALTHY[:2], cand,
                                                max_slowdown=1.25)
        assert problems == []
        assert any("steady" in n and "params changed" in n for n in notes)

    def test_cli_gate_over_series_files(self, tmp_path, capsys):
        root = _series_files(tmp_path, HEALTHY)
        paths = [os.path.join(root, f"BENCH_PR{i}.json") for i in (1, 2, 3)]
        assert check.main(["--compare", "--max-slowdown", "1.25", *paths]) == 0
        assert "2 reference document(s)" in capsys.readouterr().out

        bad = _doc([_entry("steady", 9.0), _entry("shrinking", 1.0),
                    _entry("newcomer", 0.5)])
        (tmp_path / "BENCH_PR4.json").write_text(json.dumps(bad))
        rc = check.main(["--compare", "--max-slowdown", "1.25", *paths,
                         os.path.join(root, "BENCH_PR4.json")])
        assert rc == 1

    def test_cli_rejects_bad_flags(self, capsys):
        assert check.main(["--compare", "--best-of", "0",
                           "a.json", "b.json"]) == 2
        assert check.main(["--compare", "one.json"]) == 2


class TestTrajectory:
    def test_discover_orders_by_pr_number(self, tmp_path):
        for n in (10, 2, 7):
            (tmp_path / f"BENCH_PR{n}.json").write_text("{}")
        (tmp_path / "BENCH_other.json").write_text("{}")
        labels = [label for label, _ in trajectory.discover(str(tmp_path))]
        assert labels == ["PR2", "PR7", "PR10"]

    def test_annotate_verdicts(self):
        docs = [(f"PR{i + 1}", doc) for i, doc in enumerate(HEALTHY)]
        series = trajectory.build_series(docs)
        verdicts = trajectory.annotate(series)
        assert verdicts["steady"] == [None, "ok", "ok"]
        # halving each PR: improved vs the previous PR both times
        assert verdicts["shrinking"] == [None, "improved", "improved"]
        assert verdicts["newcomer"] == [None, None, None]

    def test_annotate_flags_regression_vs_best_of_window(self):
        docs = [("PR1", _doc([_entry("e", 1.0)])),
                ("PR2", _doc([_entry("e", 2.0)])),
                ("PR3", _doc([_entry("e", 1.6)]))]
        verdicts = trajectory.annotate(trajectory.build_series(docs))
        assert verdicts["e"] == [None, "regressed", "regressed"]

    def test_renders_markdown_and_html(self, tmp_path):
        root = _series_files(tmp_path, HEALTHY)
        rc = trajectory.main(["--root", root])
        assert rc == 0
        md = (tmp_path / "docs" / "perf_trajectory.md").read_text()
        page = (tmp_path / "docs" / "perf_trajectory.html").read_text()
        assert "# Performance trajectory" in md
        for eid in ("steady", "shrinking", "newcomer"):
            assert f"`{eid}`" in md
            assert f"<code>{eid}</code>" in page
        assert "not benchmarked" in md  # newcomer's PR1/PR2 gaps
        assert "<svg" in page and "<script" not in page

    def test_output_is_deterministic(self, tmp_path):
        root = _series_files(tmp_path, HEALTHY)
        assert trajectory.main(["--root", root]) == 0
        first = (tmp_path / "docs" / "perf_trajectory.md").read_bytes()
        assert trajectory.main(["--root", root]) == 0
        assert (tmp_path / "docs" / "perf_trajectory.md").read_bytes() == first

    def test_mixed_suites_rejected(self):
        docs = [("PR1", _doc([_entry("e", 1.0)], suite="a")),
                ("PR2", _doc([_entry("e", 1.0)], suite="b"))]
        with pytest.raises(trajectory.TrajectoryError, match="mixes suites"):
            trajectory.build_series(docs)

    @pytest.mark.parametrize("mutate, message", [
        (lambda d: d.pop("suite"), "suite"),
        (lambda d: d.update(entries="nope"), "'entries' must be a list"),
        (lambda d: d["entries"].append(_entry("steady", 1.0)),
         "duplicate entry id"),
        (lambda d: d["entries"][0].pop("new_s"), "'new_s' is required"),
        (lambda d: d["entries"][0].update(new_s=True), "number or null"),
        (lambda d: d["entries"][0].pop("params"), "missing object 'params'"),
    ])
    def test_malformed_doc_messages_are_actionable(self, tmp_path, mutate,
                                                   message):
        doc = json.loads(json.dumps(HEALTHY[0]))
        mutate(doc)
        path = tmp_path / "BENCH_PR1.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(trajectory.TrajectoryError) as ei:
            trajectory.load_doc(str(path))
        # the message names the file and the violated requirement
        assert str(path) in str(ei.value)
        assert message in str(ei.value)

    def test_cli_fails_cleanly_on_malformed_series(self, tmp_path, capsys):
        (tmp_path / "BENCH_PR1.json").write_text("not json")
        assert trajectory.main(["--root", str(tmp_path)]) == 1
        assert "TRAJECTORY ERROR" in capsys.readouterr().err

    def test_cli_requires_a_series(self, tmp_path, capsys):
        assert trajectory.main(["--root", str(tmp_path)]) == 2

    def test_committed_series_renders(self, capsys):
        root = os.path.normpath(os.path.join(_BENCH_DIR, ".."))
        assert trajectory.main(["--root", root, "--print"]) == 0
        md = capsys.readouterr().out
        assert "charikar_greedy" in md
