"""Tests for the insertion-only lower-bound constructions (§4.1-4.2)."""

import numpy as np
import pytest

from repro.core import WeightedPointSet, coverage_radius
from repro.lowerbounds import (
    Lemma12Instance,
    Lemma15Instance,
    lemma12_parameters,
)


class TestLemma12Parameters:
    def test_values_d1(self):
        lam, h, r = lemma12_parameters(1, 1 / 8)
        assert lam == 2 and h == 2.0 and r == pytest.approx(1.0)

    def test_constraints(self):
        with pytest.raises(ValueError):
            lemma12_parameters(1, 0.2)  # eps > 1/(8d)
        with pytest.raises(ValueError):
            lemma12_parameters(1, 1 / 10)  # lambda = 2.5 not an integer
        # d=2, eps=1/24 gives lambda = 3 (valid)
        lam, _, _ = lemma12_parameters(2, 1 / 24)
        assert lam == 3

    def test_r_formula(self):
        lam, h, r = lemma12_parameters(2, 1 / 16)
        assert r == pytest.approx(np.sqrt(h * h - 2 * h + 2))


class TestLemma12Instance:
    @pytest.fixture
    def inst(self):
        return Lemma12Instance.build(k=4, z=3, d=1, eps=1 / 16)

    def test_cluster_count_and_size(self, inst):
        # k - 2d + 1 = 3 clusters of (lambda+1)^d = 5 points
        assert inst.required_storage == 3 * 5
        assert inst.points_per_cluster == 5

    def test_outlier_count(self, inst):
        assert len(inst.outliers) == 3

    def test_requires_k_geq_2d(self):
        with pytest.raises(ValueError):
            Lemma12Instance.build(k=1, z=1, d=1, eps=1 / 8)

    def test_separations(self, inst):
        """Clusters and outliers are pairwise >= 4(h+r) apart (the proof's
        separation requirement)."""
        gap = 4 * (inst.h + inst.r)
        # consecutive clusters
        for i in range(2):
            a = inst.cluster_points[inst.cluster_index == i]
            b = inst.cluster_points[inst.cluster_index == i + 1]
            d = abs(b[:, None, 0] - a[None, :, 0]).min()
            assert d >= gap - 1e-9
        # outliers vs cluster 0
        c0 = inst.cluster_points[inst.cluster_index == 0]
        d = abs(inst.outliers[:, None, 0] - c0[None, :, 0]).min()
        assert d >= gap - 1e-9

    def test_cross_gadget_geometry(self, inst):
        p = inst.cluster_points[0]
        g = inst.cross_gadget(p)
        assert len(g) == 2 * inst.d
        d = np.abs(g - p).max(axis=1)
        assert np.allclose(d, inst.h + inst.r)

    def test_claim13_claim14_gap(self, inst):
        """The whole point: (1-eps) * lb > ub (via Lemma 41)."""
        assert (1 - inst.eps) * inst.claim13_lower_bound() > inst.claim14_upper_bound()

    def test_witness_centers_cover_coreset_minus_pstar(self, inst):
        """Claim 14 realized: the k witness centers cover everything except
        the outliers (budget z) at radius <= r, when p* is dropped."""
        p_star = inst.cluster_points[7]
        keep = ~np.all(np.isclose(inst.cluster_points, p_star), axis=1)
        pts = [inst.outliers, inst.cluster_points[keep], inst.cross_gadget(p_star)]
        weights = [np.ones(len(inst.outliers), dtype=np.int64),
                   np.ones(int(keep.sum()), dtype=np.int64),
                   np.full(2 * inst.d, 2, dtype=np.int64)]
        coreset = WeightedPointSet(np.concatenate(pts), np.concatenate(weights))
        centers = inst.witness_centers(p_star)
        assert len(centers) <= inst.k
        r_cov = coverage_radius(coreset, centers, inst.z)
        assert r_cov <= inst.claim14_upper_bound() + 1e-9

    def test_claim13_numeric_2d(self):
        """Claim 13 numerically on a small d=2 instance: the pairwise
        separations imply opt >= (h+r)/2 on the witness set X."""
        inst = Lemma12Instance.build(k=4, z=2, d=2, eps=1 / 16)
        p_star = inst.cluster_points[0]
        gadget = inst.cross_gadget(p_star)
        # one point per other cluster + p* + gadget + outliers
        X = [p_star[None, :], gadget, inst.outliers]
        for i in range(1, inst.k - 2 * inst.d + 1):
            X.append(inst.cluster_points[inst.cluster_index == i][:1])
        X = np.concatenate(X)
        from scipy.spatial.distance import pdist
        assert pdist(X).min() >= (inst.h + inst.r) - 1e-9

    def test_prefix_set(self, inst):
        P = inst.prefix_set()
        assert len(P) == inst.required_storage + inst.z


class TestLemma15Instance:
    def test_prefix_is_unit_spaced(self):
        inst = Lemma15Instance(k=2, z=3)
        pts = inst.prefix_points()[:, 0]
        assert pts.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_continuation_extends_line(self):
        inst = Lemma15Instance(k=2, z=3)
        assert inst.continuation_point()[0] == 6.0

    def test_opt_after_continuation_exact(self):
        from repro.core import continuous_opt_1d
        inst = Lemma15Instance(k=2, z=3)
        P = WeightedPointSet.from_points(
            np.concatenate([inst.prefix_points(), inst.continuation_point()[None, :]])
        )
        assert continuous_opt_1d(P, 2, 3) == pytest.approx(
            inst.opt_after_continuation()
        )
