"""Parity tests: for every registered backend, a `KCenterSession` over a
replayed stream must produce exactly the same coreset (and radius) as
driving the underlying class/function directly.

These are the facade's correctness contract — the session adds
provenance and batching, never different math.  For the insertion-only
structures the comparison is also batched-vs-scalar (the vectorized
`extend` is required to be bit-identical to per-point `insert`)."""

import numpy as np
import pytest

from repro.api import KCenterSession, ProblemSpec
from repro.core import charikar_greedy, mbc_construction
from repro.mpc import (
    ceccarello_one_round_deterministic,
    ceccarello_one_round_randomized,
    multi_round_coreset,
    one_round_coreset,
    partition_contiguous,
    partition_random,
    two_round_coreset,
)
from repro.streaming import (
    CeccarelloStreamingCoreset,
    DeterministicDynamicCoreset,
    DynamicCoreset,
    InsertionOnlyCoreset,
    SlidingWindowCoreset,
)

K, Z, EPS, D, SEED = 3, 6, 0.5, 2, 42
N_MACHINES = 4


@pytest.fixture
def spec():
    return ProblemSpec(k=K, z=Z, eps=EPS, dim=D, seed=SEED)


@pytest.fixture
def stream():
    rng = np.random.default_rng(9)
    pts = np.concatenate([
        rng.normal((0, 0), 0.4, (150, 2)),
        rng.normal((12, 5), 0.4, (150, 2)),
        rng.normal((-6, 9), 0.4, (150, 2)),
        rng.uniform(50, 80, (6, 2)),
    ])
    rng.shuffle(pts)
    return pts


@pytest.fixture
def int_stream(stream):
    return np.clip(np.abs(stream).astype(np.int64) + 1, 1, 128)


def assert_same_coreset(a, b):
    assert np.array_equal(a.points, b.points)
    assert np.array_equal(a.weights, b.weights)


def assert_same_radius(a, b):
    ra = charikar_greedy(a, K, Z).radius if len(a) else 0.0
    rb = charikar_greedy(b, K, Z).radius if len(b) else 0.0
    assert ra == rb


class TestStreamingParity:
    def test_insertion_only(self, spec, stream):
        sess = KCenterSession.from_spec(spec, backend="insertion-only")
        sess.extend(stream)
        direct = InsertionOnlyCoreset(K, Z, EPS, D)
        for p in stream:
            direct.insert(p)
        assert_same_coreset(sess.coreset(), direct.coreset())
        assert sess.backend.algo.r == direct.r
        assert sess.backend.algo.doublings == direct.doublings
        assert_same_radius(sess.coreset(), direct.coreset())

    def test_insertion_only_capped(self, spec, stream):
        sess = KCenterSession.from_spec(spec, backend="insertion-only",
                                        size_cap=60)
        sess.extend(stream)
        direct = InsertionOnlyCoreset(K, Z, EPS, D, size_cap=60)
        for p in stream:
            direct.insert(p)
        assert_same_coreset(sess.coreset(), direct.coreset())
        assert sess.backend.algo.doublings == direct.doublings

    def test_ceccarello_stream(self, spec, stream):
        sess = KCenterSession.from_spec(spec, backend="ceccarello-stream")
        sess.extend(stream)
        direct = CeccarelloStreamingCoreset(K, Z, EPS, D)
        for p in stream:
            direct.insert(p)
        assert_same_coreset(sess.coreset(), direct.coreset())

    def test_mixed_insert_and_extend(self, spec, stream):
        """Interleaving scalar and batched ingest replays the same stream."""
        sess = KCenterSession.from_spec(spec, backend="insertion-only")
        sess.insert(stream[0])
        sess.extend(stream[1:200])
        sess.insert(stream[200])
        sess.extend(stream[201:])
        direct = InsertionOnlyCoreset(K, Z, EPS, D)
        for p in stream:
            direct.insert(p)
        assert_same_coreset(sess.coreset(), direct.coreset())


class TestDynamicParity:
    def test_dynamic(self, spec, int_stream):
        sess = KCenterSession.from_spec(spec, backend="dynamic",
                                        delta_universe=128, s_override=64)
        sess.extend(int_stream)
        for p in int_stream[:100]:
            sess.delete(p)
        direct = DynamicCoreset(K, Z, EPS, 128, D,
                                rng=np.random.default_rng(SEED), s_override=64)
        for p in int_stream:
            direct.insert(p)
        for p in int_stream[:100]:
            direct.delete(p)
        assert_same_coreset(sess.coreset(), direct.coreset())
        assert sess.backend.algo.updates_seen == direct.updates_seen

    def test_dynamic_deterministic(self, spec, int_stream):
        sess = KCenterSession.from_spec(spec, backend="dynamic-deterministic",
                                        delta_universe=128, s_override=64)
        sess.extend(int_stream)
        sess.delete_many(int_stream[:100])
        direct = DeterministicDynamicCoreset(K, Z, EPS, 128, D, s_override=64)
        for p in int_stream:
            direct.insert(p)
        for p in int_stream[:100]:
            direct.delete(p)
        assert_same_coreset(sess.coreset(), direct.coreset())


class TestSlidingWindowParity:
    def test_sliding_window(self, spec, stream):
        sess = KCenterSession.from_spec(spec, backend="sliding-window",
                                        window=100, r_min=0.05, r_max=300.0)
        sess.extend(stream)
        direct = SlidingWindowCoreset(K, Z, EPS, D, 100,
                                      r_min=0.05, r_max=300.0)
        for p in stream:
            direct.insert(p)
        assert_same_coreset(sess.coreset(), direct.coreset())
        assert_same_radius(sess.coreset(), direct.coreset())


class TestMPCParity:
    def _parts(self, stream, random=False):
        from repro import WeightedPointSet

        P = WeightedPointSet.from_points(stream)
        if random:
            return P, partition_random(P, N_MACHINES,
                                       np.random.default_rng(SEED + 1))
        return P, partition_contiguous(P, N_MACHINES)

    def test_two_round(self, spec, stream):
        sess = KCenterSession.from_spec(spec, backend="mpc-two-round",
                                        num_machines=N_MACHINES)
        sess.extend(stream)
        _, parts = self._parts(stream)
        direct = two_round_coreset(parts, K, Z, EPS)
        assert_same_coreset(sess.coreset(), direct.coreset)
        res = sess.backend.last_result
        assert res.extras["outlier_budgets"] == direct.extras["outlier_budgets"]
        assert res.eps_guarantee == direct.eps_guarantee

    def test_one_round(self, spec, stream):
        # the facade's random partition draws from spec.rng(salt=1)
        sess = KCenterSession.from_spec(spec, backend="mpc-one-round",
                                        num_machines=N_MACHINES)
        sess.extend(stream)
        _, parts = self._parts(stream, random=True)
        direct = one_round_coreset(parts, K, Z, EPS)
        assert_same_coreset(sess.coreset(), direct.coreset)

    def test_multi_round(self, spec, stream):
        sess = KCenterSession.from_spec(spec, backend="mpc-multi-round",
                                        num_machines=N_MACHINES, rounds=2,
                                        partition="contiguous")
        sess.extend(stream)
        _, parts = self._parts(stream)
        direct = multi_round_coreset(parts, K, Z, EPS, rounds=2)
        assert_same_coreset(sess.coreset(), direct.coreset)
        assert sess.backend.last_result.eps_guarantee == direct.eps_guarantee

    def test_cpp_deterministic(self, spec, stream):
        sess = KCenterSession.from_spec(spec, backend="cpp-mpc-deterministic",
                                        num_machines=N_MACHINES)
        sess.extend(stream)
        _, parts = self._parts(stream)
        direct = ceccarello_one_round_deterministic(parts, K, Z, EPS)
        assert_same_coreset(sess.coreset(), direct.coreset)

    def test_cpp_randomized(self, spec, stream):
        sess = KCenterSession.from_spec(spec, backend="cpp-mpc-randomized",
                                        num_machines=N_MACHINES)
        sess.extend(stream)
        _, parts = self._parts(stream, random=True)
        direct = ceccarello_one_round_randomized(parts, K, Z, EPS)
        assert_same_coreset(sess.coreset(), direct.coreset)


class TestOfflineParity:
    def test_offline(self, spec, stream):
        sess = KCenterSession.from_spec(spec, backend="offline")
        sess.extend(stream)
        from repro import WeightedPointSet

        direct = mbc_construction(
            WeightedPointSet.from_points(stream), K, Z, EPS
        )
        assert_same_coreset(sess.coreset(), direct.coreset)
        assert sess.backend.last_mbc.mini_ball_radius == direct.mini_ball_radius
