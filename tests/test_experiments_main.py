"""Tests for the `python -m repro.experiments` sharded runner."""

from repro.engine import ResultsCache
from repro.experiments.__main__ import EXPERIMENTS, main, run_experiment


class TestRunner:
    def test_quick_single_experiment(self, capsys):
        rc = main(["--quick", "--no-cache", "E15"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "E15" in out and "lemma41_gap" in out

    def test_unknown_id(self, capsys):
        rc = main(["E99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_multiple_ids(self, capsys):
        rc = main(["--quick", "--no-cache", "E5", "E12"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Lemma 12" in out or "E5" in out
        assert "E12" in out

    def test_registry_ids_well_formed(self):
        from repro.experiments import table1

        for eid, exp in EXPERIMENTS.items():
            assert eid == exp.eid and eid.startswith("E")
            assert exp.title
            assert callable(getattr(table1, exp.driver))

    def test_list(self, capsys):
        rc = main(["--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for eid, exp in EXPERIMENTS.items():
            assert eid in out and exp.title in out

    def test_bad_jobs(self, capsys):
        assert main(["--jobs", "0", "E15"]) == 2


class TestCache:
    def test_rows_cached_and_reused(self, tmp_path, capsys):
        rc = main(["--quick", "--results-dir", str(tmp_path), "E15"])
        assert rc == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("E15-*.pkl")) and list(tmp_path.glob("E15-*.json"))
        # second run is served from the cache and prints identical tables
        rc = main(["--quick", "--results-dir", str(tmp_path), "E15"])
        assert rc == 0
        assert capsys.readouterr().out == first

    def test_force_recomputes(self, tmp_path):
        cache = ResultsCache(str(tmp_path))
        rows = run_experiment("E15", quick=True, cache=cache)
        again = run_experiment("E15", quick=True, cache=cache, force=True)
        assert [r.metrics for r in rows] == [r.metrics for r in again]

    def test_quick_and_full_have_distinct_keys(self):
        exp = EXPERIMENTS["E2"]
        kq = ResultsCache.key("E2", {"kwargs": exp.kwargs(True), "quick": True})
        kf = ResultsCache.key("E2", {"kwargs": exp.kwargs(False), "quick": False})
        assert kq != kf


class TestSharded:
    def test_jobs_2_matches_serial(self, tmp_path, capsys):
        rc = main(["--quick", "--no-cache", "--jobs", "2", "E5", "E15"])
        assert rc == 0
        sharded = capsys.readouterr().out
        rc = main(["--quick", "--no-cache", "E5", "E15"])
        assert rc == 0
        assert capsys.readouterr().out == sharded
