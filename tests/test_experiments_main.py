"""Tests for the `python -m repro.experiments` runner."""


from repro.experiments.__main__ import EXPERIMENTS, main


class TestRunner:
    def test_quick_single_experiment(self, capsys):
        rc = main(["--quick", "E15"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "E15" in out and "lemma41_gap" in out

    def test_unknown_id(self, capsys):
        rc = main(["E99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_multiple_ids(self, capsys):
        rc = main(["--quick", "E5", "E12"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Lemma 12" in out or "E5" in out
        assert "E12" in out

    def test_registry_ids_well_formed(self):
        for eid, (title, full, quick) in EXPERIMENTS.items():
            assert eid.startswith("E")
            assert callable(full) and callable(quick)
            assert title
