"""Tests for the sliding-window (DBMZ) structure."""

import numpy as np
import pytest

from repro.core import WeightedPointSet, charikar_greedy
from repro.streaming import GuessStructure, SlidingWindowCoreset, default_cell_capacity
from repro.workloads import drifting_stream


class TestGuessStructure:
    def test_recency_buffer_caps_at_z_plus_1(self):
        g = GuessStructure(r=1.0, k=1, z=2, eps=1.0, d=1, window=100)
        for t in range(10):
            g.insert(np.array([0.0]), t)
        assert g.stored_items == 3  # z+1

    def test_expired_cells_purged(self):
        g = GuessStructure(r=1.0, k=1, z=1, eps=1.0, d=1, window=5)
        g.insert(np.array([0.0]), 0)
        g.insert(np.array([100.0]), 10)  # first cell now expired
        assert len(g.cells) == 1

    def test_query_window_filtering(self):
        g = GuessStructure(r=1.0, k=2, z=1, eps=1.0, d=1, window=5)
        g.insert(np.array([0.0]), 0)
        g.insert(np.array([50.0]), 4)
        cs = g.query(4)  # window [0,4]: both live
        assert cs is not None and cs.total_weight == 2
        g.insert(np.array([50.0]), 8)
        cs = g.query(8)  # window [4,8]: only the recent cell
        assert cs.total_weight >= 1
        assert all(abs(p[0] - 50.0) < 25 for p in cs.points)

    def test_eviction_poisons_queries(self):
        g = GuessStructure(r=1.0, k=1, z=0, eps=1.0, d=1, window=1000, capacity=2)
        g.insert(np.array([0.0]), 0)
        g.insert(np.array([100.0]), 1)
        g.insert(np.array([200.0]), 2)  # exceeds capacity, evicts t=0 cell
        assert g.query(2) is None  # window still contains the evicted arrival
        assert g.invalid_through >= 2

    def test_positive_radius_required(self):
        with pytest.raises(ValueError):
            GuessStructure(r=0.0, k=1, z=0, eps=0.5, d=1, window=10)

    def test_capacity_default(self):
        assert default_cell_capacity(2, 3, 0.5, 1) == 2 * 12 + 3


class TestSlidingWindowCoreset:
    def test_window_weight_bounded(self, rng):
        sw = SlidingWindowCoreset(2, 2, 0.5, 1, window=50, r_min=0.01, r_max=100)
        stream = drifting_stream(300, 2, 6, d=1, rng=rng)
        sw.extend(stream)
        cs = sw.coreset()
        assert 0 < cs.total_weight <= 50

    def test_radius_tracks_offline(self, rng):
        sw = SlidingWindowCoreset(2, 3, 0.5, 2, window=100, r_min=0.05, r_max=200)
        stream = drifting_stream(500, 2, 10, d=2, rng=rng)
        sw.extend(stream)
        wpts = WeightedPointSet.from_points(stream[-100:])
        r_off = charikar_greedy(wpts, 2, 3).radius
        r_sw = sw.radius()
        assert r_sw <= 4 * r_off + 1e-9
        assert r_off <= 4 * r_sw + 1e-6

    def test_storage_grows_with_z(self, rng):
        stream = drifting_stream(400, 2, 20, d=1, rng=rng)
        small = SlidingWindowCoreset(2, 1, 0.5, 1, 100, 0.05, 100)
        big = SlidingWindowCoreset(2, 10, 0.5, 1, 100, 0.05, 100)
        small.extend(stream)
        big.extend(stream)
        assert big.stored_items > small.stored_items

    def test_storage_independent_of_stream_length(self, rng):
        sw = SlidingWindowCoreset(2, 2, 0.5, 1, window=50, r_min=0.05, r_max=100)
        stream = drifting_stream(200, 2, 5, d=1, rng=rng)
        sw.extend(stream)
        mid = sw.stored_items
        sw.extend(drifting_stream(800, 2, 5, d=1, rng=rng))
        assert sw.stored_items <= 3 * mid + 100

    def test_ladder_length(self):
        sw = SlidingWindowCoreset(1, 0, 0.5, 1, 10, r_min=1.0, r_max=1024.0)
        assert sw.num_guesses == 11

    def test_ladder_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowCoreset(1, 0, 0.5, 1, 10, r_min=2.0, r_max=1.0)
        with pytest.raises(ValueError):
            SlidingWindowCoreset(1, 0, 0.5, 1, 10, 1.0, 2.0, ladder_ratio=1.0)

    def test_r_max_too_small_raises(self, rng):
        sw = SlidingWindowCoreset(1, 0, 0.5, 1, window=10, r_min=1e-6, r_max=1e-5,
                                  capacity=1)
        # points far apart cannot be served by any tiny guess
        for x in [0.0, 1000.0, 2000.0]:
            sw.insert([x])
        with pytest.raises(RuntimeError):
            sw.coreset()

    def test_expired_content_ignored(self):
        """After W new arrivals, old clusters no longer affect the answer."""
        sw = SlidingWindowCoreset(1, 0, 0.5, 1, window=20, r_min=0.01, r_max=10000)
        for _ in range(20):
            sw.insert([5000.0])
        for _ in range(20):
            sw.insert([0.0])
        cs = sw.coreset()
        assert all(abs(p[0]) < 1.0 for p in cs.points)
        assert sw.radius() == 0.0


def _assert_same_state(a: SlidingWindowCoreset, b: SlidingWindowCoreset):
    """Full structural equality of two ladders, bit for bit."""
    assert a.now == b.now
    assert a.num_guesses == b.num_guesses
    for ga, gb in zip(a.guesses, b.guesses):
        assert ga.invalid_through == gb.invalid_through
        assert list(ga.cells) == list(gb.cells)  # same keys, same dict order
        for key in ga.cells:
            ba, bb = ga.cells[key], gb.cells[key]
            assert [t for t, _ in ba] == [t for t, _ in bb]
            for (_, pa), (_, pb) in zip(ba, bb):
                assert np.array_equal(pa, pb)
    csa, csb = a.coreset(), b.coreset()
    assert np.array_equal(csa.points, csb.points)
    assert np.array_equal(csa.weights, csb.weights)
    assert a.stored_items == b.stored_items


class TestBatchExtendParity:
    """The vectorized batch path must match the scalar path bit for bit."""

    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_extend_matches_insert(self, rng, d):
        stream = drifting_stream(400, 2, 10, d=d, rng=rng)
        scalar = SlidingWindowCoreset(2, 3, 0.5, d, window=80, r_min=0.05, r_max=200)
        batch = SlidingWindowCoreset(2, 3, 0.5, d, window=80, r_min=0.05, r_max=200)
        for p in stream:
            scalar.insert(p)
        batch.extend(stream)
        _assert_same_state(scalar, batch)

    def test_extend_matches_insert_with_eviction(self, rng):
        """Tiny capacity forces the eviction/poisoning path in both."""
        stream = drifting_stream(300, 3, 10, d=1, rng=rng)
        kw = dict(window=40, r_min=0.01, r_max=50, capacity=3)
        scalar = SlidingWindowCoreset(1, 1, 0.5, 1, **kw)
        batch = SlidingWindowCoreset(1, 1, 0.5, 1, **kw)
        for p in stream:
            scalar.insert(p)
        batch.extend(stream)
        _assert_same_state(scalar, batch)

    def test_interleaved_scalar_and_batch(self, rng):
        """Mixing insert() and extend() stays consistent with pure scalar."""
        stream = drifting_stream(240, 2, 8, d=2, rng=rng)
        scalar = SlidingWindowCoreset(2, 2, 0.5, 2, window=60, r_min=0.05, r_max=100)
        mixed = SlidingWindowCoreset(2, 2, 0.5, 2, window=60, r_min=0.05, r_max=100)
        for p in stream:
            scalar.insert(p)
        mixed.extend(stream[:100])
        for p in stream[100:140]:
            mixed.insert(p)
        mixed.extend(stream[140:])
        _assert_same_state(scalar, mixed)

    def test_batch_chunking_irrelevant(self, rng):
        """Any chunking of the stream yields the same structure."""
        stream = drifting_stream(200, 2, 6, d=1, rng=rng)
        whole = SlidingWindowCoreset(2, 2, 0.5, 1, window=50, r_min=0.05, r_max=100)
        chunked = SlidingWindowCoreset(2, 2, 0.5, 1, window=50, r_min=0.05, r_max=100)
        whole.extend(stream)
        for lo in range(0, 200, 33):
            chunked.extend(stream[lo:lo + 33])
        _assert_same_state(whole, chunked)
