"""Tests for the cross-backend evaluation matrix and its CLI."""

import json

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.scenarios import get_scenario, replicate_seeds, run_cell, run_matrix
from repro.scenarios.matrix import (
    DEFAULT_BACKENDS,
    default_scenario_names,
    resolve_scenario_names,
)
from repro.scenarios.registry import UnknownScenarioError

SMOKE_SCENARIOS = ["clustered-baseline", "outlier-burst", "duplicate-flood"]
SMOKE_BACKENDS = ["offline", "insertion-only"]

CELL_KEYS = {
    "scenario", "backend", "status", "radius", "reference_radius",
    "radius_ratio", "coreset_size", "peak_storage", "updates",
    "wall_time", "note", "seed", "replicate",
}


@pytest.fixture(scope="module")
def smoke():
    """The 2-backends x 3-scenarios smoke matrix (computed once)."""
    return run_matrix(SMOKE_SCENARIOS, SMOKE_BACKENDS, quick=True, seed=0)


class TestMatrix:
    def test_smoke_all_ok(self, smoke):
        assert len(smoke.cells) == 6
        for cell in smoke.cells:
            assert cell.status == "ok", (cell.scenario, cell.backend, cell.note)
            assert cell.radius >= 0
            assert cell.reference_radius > 0
            assert 0 <= cell.radius_ratio < 10
            assert cell.coreset_size > 0
            assert cell.peak_storage >= 1
            inst = get_scenario(cell.scenario).make(quick=True, seed=0)
            assert cell.updates == inst.n
            assert cell.wall_time >= 0

    def test_sweep_order_and_lookup(self, smoke):
        assert smoke.scenarios == SMOKE_SCENARIOS
        assert smoke.backends == SMOKE_BACKENDS
        pairs = [(c.scenario, c.backend) for c in smoke.cells]
        assert pairs == [(s, b) for s in SMOKE_SCENARIOS for b in SMOKE_BACKENDS]
        assert smoke.cell("outlier-burst", "offline").scenario == "outlier-burst"
        assert smoke.cell("outlier-burst", "no-such") is None

    def test_json_schema(self, smoke):
        doc = smoke.to_json_dict()
        assert doc["suite"] == "scenario-matrix"
        assert doc["quick"] is True and doc["seed"] == 0
        assert doc["scenarios"] == SMOKE_SCENARIOS
        assert doc["backends"] == SMOKE_BACKENDS
        assert {"version", "generated_at", "cells"} <= set(doc)
        assert len(doc["cells"]) == 6
        for cell in doc["cells"]:
            assert set(cell) == CELL_KEYS
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_markdown(self, smoke):
        md = smoke.to_markdown()
        assert "Radius ratio vs reference" in md
        assert "### Full matrix" in md
        for name in SMOKE_SCENARIOS + SMOKE_BACKENDS:
            assert name in md

    def test_incompatible_cell_is_skipped(self):
        cell = run_cell("clustered-baseline", "dynamic", quick=True)
        assert cell.status == "skipped"
        assert cell.radius is None
        assert "incompatible" in cell.note

    def test_dynamic_runs_on_integer_grid(self):
        cell = run_cell("integer-grid", "dynamic", quick=True)
        assert cell.status == "ok", cell.note
        assert cell.radius_ratio < 3

    def test_unknown_names_raise_before_work(self):
        with pytest.raises(UnknownScenarioError):
            run_matrix(["no-such-scenario"], SMOKE_BACKENDS, quick=True)
        with pytest.raises(KeyError):
            run_matrix(SMOKE_SCENARIOS[:1], ["no-such-backend"], quick=True)

    def test_defaults_meet_the_acceptance_floor(self):
        assert len(default_scenario_names()) >= 5
        assert len(DEFAULT_BACKENDS) >= 3
        for name in default_scenario_names():
            assert "real" not in get_scenario(name).tags

    def test_cells_cached_and_reused(self, tmp_path):
        first = run_matrix(SMOKE_SCENARIOS[:1], SMOKE_BACKENDS, quick=True,
                           cache_root=str(tmp_path))
        assert list(tmp_path.glob("matrix-cell-*.pkl"))
        # the scenario reference is cached once, shared by all its cells
        assert len(list(tmp_path.glob("matrix-ref-*.pkl"))) == 1
        again = run_matrix(SMOKE_SCENARIOS[:1], SMOKE_BACKENDS, quick=True,
                           cache_root=str(tmp_path))
        assert again.cells == first.cells
        forced = run_matrix(SMOKE_SCENARIOS[:1], SMOKE_BACKENDS, quick=True,
                            cache_root=str(tmp_path), force=True)
        assert [c.scenario for c in forced.cells] == \
            [c.scenario for c in first.cells]

    def test_transient_failures_are_not_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OFFLINE", "1")
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path / "data"))
        result = run_matrix(["real-iris"], ["offline"], quick=True,
                            cache_root=str(tmp_path))
        assert result.cells[0].status == "unavailable"
        assert not list(tmp_path.glob("matrix-cell-*.pkl"))

    def test_stale_cache_schema_is_a_miss(self, tmp_path):
        from repro.engine import ResultsCache

        cache = ResultsCache(str(tmp_path))
        params = {"scenario": SMOKE_SCENARIOS[0], "backend": "offline",
                  "quick": True, "seed": 0}
        cache.put("matrix-cell", params,
                  {"status": "ok", "some_old_field": 1})
        result = run_matrix(SMOKE_SCENARIOS[:1], ["offline"], quick=True,
                            cache_root=str(tmp_path))
        assert result.cells[0].status == "ok"
        assert result.cells[0].radius is not None

    def test_precomputed_reference_is_used(self):
        cell = run_cell("clustered-baseline", "offline", quick=True,
                        reference=123.0)
        assert cell.reference_radius == 123.0


class TestCacheKeyResolution:
    def test_cache_params_include_full_spec_and_options(self):
        from repro.api import get_backend
        from repro.scenarios import cell_cache_params

        inst = get_scenario("clustered-baseline").make(quick=True, seed=0)
        info = get_backend("insertion-only")
        params = cell_cache_params("clustered-baseline", "insertion-only",
                                   True, 0, inst.spec,
                                   inst.session_options(info))
        assert params["spec"] == inst.spec.as_dict()
        assert {"dtype", "kernel_chunk"} <= set(params["spec"])
        assert "options" in params

    def test_dtype_change_misses_the_cache(self, tmp_path):
        # the stale-cache hazard: a --dtype change must recompute, not
        # serve the float64 cell
        first = run_matrix(["clustered-baseline"], ["offline"], quick=True,
                           cache_root=str(tmp_path))
        assert first.cells[0].status == "ok"
        n_entries = len(list(tmp_path.glob("matrix-cell-*.pkl")))
        assert n_entries == 1
        other = run_matrix(["clustered-baseline"], ["offline"], quick=True,
                           cache_root=str(tmp_path), dtype="float32")
        assert other.cells[0].status == "ok"
        assert len(list(tmp_path.glob("matrix-cell-*.pkl"))) == n_entries + 1

    def test_unavailable_dataset_serves_last_known_good_cell(self, tmp_path):
        from repro.scenarios import register_scenario, unregister_scenario
        from repro.scenarios.datasets import DatasetUnavailableError

        base_factory = get_scenario("clustered-baseline").factory
        down = {"flag": False}

        def factory(quick=False, seed=0):
            if down["flag"]:
                raise DatasetUnavailableError("dataset offline")
            return base_factory(quick=quick, seed=seed)

        register_scenario("_lkg-sc", factory, tags=("real", "testing"))
        try:
            first = run_matrix(["_lkg-sc"], ["offline"], quick=True,
                               cache_root=str(tmp_path))
            assert first.cells[0].status == "ok"
            down["flag"] = True
            # simulate a fresh process: the per-process instance memo
            # would otherwise keep serving the materialized dataset
            from repro.scenarios.matrix import _INSTANCES
            _INSTANCES.clear()
            # the dataset going away must not lose the cached ok cell
            again = run_matrix(["_lkg-sc"], ["offline"], quick=True,
                               cache_root=str(tmp_path))
            assert again.cells[0].status == "ok"
            assert again.cells[0].radius == first.cells[0].radius
            # without a cache the honest status comes back
            cold = run_matrix(["_lkg-sc"], ["offline"], quick=True)
            assert cold.cells[0].status == "unavailable"
        finally:
            unregister_scenario("_lkg-sc")

    def test_backend_options_are_part_of_the_key(self):
        from repro.api import get_backend
        from repro.engine import ResultsCache
        from repro.scenarios import cell_cache_params

        inst = get_scenario("clustered-baseline").make(quick=True, seed=0)
        info = get_backend("sliding-window")
        opts = inst.session_options(info)
        a = cell_cache_params("clustered-baseline", "sliding-window", True, 0,
                              inst.spec, opts)
        b = cell_cache_params("clustered-baseline", "sliding-window", True, 0,
                              inst.spec, {**opts, "window": 17})
        assert ResultsCache.key("matrix-cell", a) != \
            ResultsCache.key("matrix-cell", b)


class TestCheckpointResume:
    SCENARIOS = ["clustered-baseline", "outlier-burst"]
    BACKENDS = ["insertion-only", "sliding-window"]

    def _strip_wall(self, cells):
        return [{k: v for k, v in c.__dict__.items() if k != "wall_time"}
                for c in cells]

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path,
                                                   monkeypatch):
        import repro.scenarios.matrix as matrix_mod

        base = run_matrix(self.SCENARIOS, self.BACKENDS, quick=True, seed=0)
        ckpt_dir = str(tmp_path / "ckpts")

        monkeypatch.setenv("REPRO_MATRIX_KILL_AFTER", "5")
        monkeypatch.setattr(matrix_mod, "_ckpt_writes", 0)
        with pytest.raises(SystemExit, match="simulated kill"):
            run_matrix(self.SCENARIOS, self.BACKENDS, quick=True, seed=0,
                       checkpoint_dir=ckpt_dir)
        # the killed sweep left a mid-stream checkpoint behind
        leftover = list((tmp_path / "ckpts").glob("matrix-ckpt-*.ckpt"))
        assert leftover

        monkeypatch.delenv("REPRO_MATRIX_KILL_AFTER")
        resumed = run_matrix(self.SCENARIOS, self.BACKENDS, quick=True,
                             seed=0, checkpoint_dir=ckpt_dir)
        # bit-identical to the uninterrupted sweep (wall time is the only
        # run-dependent provenance)
        assert self._strip_wall(resumed.cells) == self._strip_wall(base.cells)
        # completed cells removed their checkpoints
        assert not list((tmp_path / "ckpts").glob("*.ckpt"))

    def test_checkpoints_removed_after_clean_run(self, tmp_path):
        ckpt_dir = str(tmp_path / "ckpts")
        result = run_matrix(["clustered-baseline"], ["insertion-only"],
                            quick=True, seed=0, checkpoint_dir=ckpt_dir)
        assert result.cells[0].status == "ok"
        assert not list((tmp_path / "ckpts").glob("*.ckpt"))

    def test_buffered_backends_thin_their_checkpoint_cadence(
        self, tmp_path, monkeypatch
    ):
        import repro.scenarios.matrix as matrix_mod
        from repro.scenarios.matrix import run_cell as run_cell_fn

        n_batches = len(get_scenario("clustered-baseline")
                        .make(quick=True, seed=0).batches)
        monkeypatch.delenv("REPRO_MATRIX_KILL_AFTER", raising=False)

        def writes_for(backend):
            monkeypatch.setattr(matrix_mod, "_ckpt_writes", 0)
            cell = run_cell_fn("clustered-baseline", backend, quick=True,
                               seed=0, checkpoint_dir=str(tmp_path / backend))
            assert cell.status == "ok"
            return matrix_mod._ckpt_writes

        # streaming backends checkpoint every batch; buffered backends
        # (whole-prefix snapshots) use the power-of-two cadence
        assert writes_for("insertion-only") == n_batches
        if n_batches > 2:
            assert writes_for("offline") < n_batches

    def test_stale_checkpoint_from_other_cell_is_ignored(self, tmp_path):
        from repro.scenarios.matrix import run_cell as run_cell_fn

        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        # unreadable garbage under a name the cell will probe
        baseline = run_cell_fn("clustered-baseline", "insertion-only",
                               quick=True, seed=0)
        for name in ("matrix-ckpt-deadbeef0000.ckpt",):
            (ckpt_dir / name).write_bytes(b"garbage")
        cell = run_cell_fn("clustered-baseline", "insertion-only", quick=True,
                           seed=0, checkpoint_dir=str(ckpt_dir))
        assert cell.status == "ok"
        assert cell.radius == baseline.radius


class TestScenarioSelection:
    def test_names_pass_through(self):
        assert resolve_scenario_names(["outlier-burst"]) == ["outlier-burst"]

    def test_tags_expand(self):
        drift = resolve_scenario_names(["drift"])
        assert len(drift) >= 2
        mixed = resolve_scenario_names(["drift", "adversarial"])
        assert set(drift) < set(mixed)

    def test_all_and_dedup(self):
        everything = resolve_scenario_names(["all", "outlier-burst"])
        assert everything.count("outlier-burst") == 1
        assert len(everything) >= 10

    def test_unknown_token(self):
        with pytest.raises(UnknownScenarioError) as ei:
            resolve_scenario_names(["no-such-token"])
        assert "tags" in str(ei.value)


class TestCLI:
    def test_matrix_subcommand_writes_outputs(self, tmp_path, capsys):
        rc = experiments_main([
            "matrix", "--quick", "--no-cache",
            "--scenarios", "outlier-burst,duplicate-flood",
            "--backends", "offline,insertion-only",
            "--results-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Radius ratio vs reference" in out
        doc = json.loads((tmp_path / "matrix.json").read_text())
        assert doc["suite"] == "scenario-matrix"
        assert len(doc["cells"]) == 4
        assert "outlier-burst" in (tmp_path / "matrix.md").read_text()

    def test_matrix_tag_selection(self, tmp_path, capsys):
        rc = experiments_main([
            "matrix", "--quick", "--no-cache", "--scenarios", "adversarial",
            "--backends", "offline", "--results-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "adversarial-insertion" in out
        assert "adversarial-sorted" in out

    def test_matrix_list(self, capsys):
        rc = experiments_main(["matrix", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "outlier-burst" in out and "adversarial" in out

    def test_matrix_unknown_scenario_exits_2(self, capsys):
        rc = experiments_main(["matrix", "--scenarios", "nope"])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_matrix_unknown_backend_exits_2(self, capsys):
        rc = experiments_main(["matrix", "--backends", "nope"])
        assert rc == 2
        assert "unknown backend" in capsys.readouterr().out

    def test_matrix_bad_jobs_exits_2(self, capsys):
        assert experiments_main(["matrix", "--jobs", "0"]) == 2

    def test_matrix_checkpoint_dir_and_dtype_flags(self, tmp_path, capsys):
        rc = experiments_main([
            "matrix", "--quick", "--no-cache",
            "--scenarios", "outlier-burst", "--backends", "offline",
            "--results-dir", str(tmp_path),
            "--checkpoint-dir", str(tmp_path / "ckpts"),
            "--dtype", "float32",
        ])
        assert rc == 0
        doc = json.loads((tmp_path / "matrix.json").read_text())
        assert doc["cells"][0]["status"] == "ok"
        # the clean run leaves no checkpoints behind
        assert not list((tmp_path / "ckpts").glob("*.ckpt"))

    def test_matrix_empty_selection_exits_2(self, capsys):
        assert experiments_main(["matrix", "--backends", ","]) == 2
        assert "selected nothing" in capsys.readouterr().out

    def test_instance_memo_reuses_materializations(self):
        from repro.scenarios.matrix import _INSTANCES, _scenario_instance

        a = _scenario_instance("clustered-baseline", True, 0)
        b = _scenario_instance("clustered-baseline", True, 0)
        assert a is b
        assert ("clustered-baseline", True, 0) in _INSTANCES

    def test_reregistration_invalidates_reference_memo(self):
        from repro.scenarios import register_scenario, unregister_scenario
        from repro.scenarios.matrix import _REFERENCES, _scenario_reference

        factory = get_scenario("outlier-burst").factory
        register_scenario("_memo-sc", factory, tags=("testing",))
        try:
            ref = _scenario_reference("_memo-sc", True, 0, None, False)
            assert ("_memo-sc", True, 0) in _REFERENCES
            register_scenario("_memo-sc", factory, overwrite=True)
            assert ("_memo-sc", True, 0) not in _REFERENCES
            assert _scenario_reference("_memo-sc", True, 0, None, False) == ref
        finally:
            unregister_scenario("_memo-sc")
        assert ("_memo-sc", True, 0) not in _REFERENCES

    def test_legacy_cli_still_dispatches(self, capsys):
        rc = experiments_main(["--list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "E1" in out


def _normalized_doc(result):
    """A replicated sweep's JSON doc with the run-dependent parts
    (timestamps, wall times and their aggregates) stripped — the same
    normalization the CI byte-parity steps apply."""
    doc = result.to_json_dict()
    doc.pop("generated_at", None)
    for cell in doc["cells"]:
        cell.pop("wall_time", None)
    if "summary" in doc:
        doc["summary"] = [r for r in doc["summary"]
                          if r["metric"] != "wall_time"]
    if "significance" in doc:
        doc["significance"]["metrics"].pop("wall_time", None)
    return json.dumps(doc, sort_keys=True, indent=2)


class TestReplicates:
    SCENARIOS = ["clustered-baseline", "outlier-burst"]
    BACKENDS = ["offline", "insertion-only"]

    @pytest.fixture(scope="class")
    def replicated(self):
        """The 2x2x3-replicate sweep (computed once)."""
        return run_matrix(self.SCENARIOS, self.BACKENDS, quick=True, seed=0,
                          replicates=3)

    def test_replicate_seeds_spawn_discipline(self):
        # one replicate keeps the root seed (plain sweeps stay
        # byte-identical); widening N never changes earlier seeds
        assert replicate_seeds(7, 1) == [7]
        assert replicate_seeds(0, 5)[:3] == replicate_seeds(0, 3)
        assert len(set(replicate_seeds(0, 5))) == 5
        with pytest.raises(ValueError):
            replicate_seeds(0, 0)

    def test_replicated_sweep_shape(self, replicated):
        assert len(replicated.cells) == 2 * 2 * 3
        seeds = replicate_seeds(0, 3)
        for s in self.SCENARIOS:
            for b in self.BACKENDS:
                reps = replicated.replicate_cells(s, b)
                assert [c.replicate for c in reps] == [0, 1, 2]
                assert [c.seed for c in reps] == seeds
                assert all(c.status == "ok" for c in reps)

    def test_json_doc_carries_summary_and_significance(self, replicated):
        doc = replicated.to_json_dict()
        assert doc["replicates"] == 3
        assert {"summary", "significance"} <= set(doc)
        json.dumps(doc)  # JSON-serializable as-is
        for row in doc["summary"]:
            assert row["n"] == 3
            assert row["ci_lo"] <= row["mean"] <= row["ci_hi"]
        sig = doc["significance"]
        assert sig["alpha"] == 0.05
        for comparisons in sig["metrics"].values():
            for c in comparisons:
                assert c["n_pairs"] == 6  # 2 scenarios x 3 replicates

    def test_single_sweep_doc_has_no_aggregates(self, smoke):
        doc = smoke.to_json_dict()
        assert doc["replicates"] == 1
        assert "summary" not in doc and "significance" not in doc

    def test_replicated_markdown(self, replicated):
        md = replicated.to_markdown()
        assert "over 3 replicates" in md
        assert "### Statistical summary" in md
        assert "### Pairwise significance" in md
        # the pivot shows mean [lo, hi], not a bare point estimate
        first_pivot_row = md.split("\n")[4]
        assert "[" in first_pivot_row and "]" in first_pivot_row

    def test_jobs_parity_is_byte_identical(self, replicated):
        threaded = run_matrix(self.SCENARIOS, self.BACKENDS, quick=True,
                              seed=0, replicates=3, executor="thread", jobs=2)
        assert _normalized_doc(threaded) == _normalized_doc(replicated)

    def test_replicate_cells_hit_the_cache(self, tmp_path):
        first = run_matrix(self.SCENARIOS[:1], self.BACKENDS[:1], quick=True,
                           seed=0, replicates=3, cache_root=str(tmp_path))
        n_entries = len(list(tmp_path.glob("matrix-cell-*.pkl")))
        assert n_entries == 3  # one cached cell per replicate
        again = run_matrix(self.SCENARIOS[:1], self.BACKENDS[:1], quick=True,
                           seed=0, replicates=3, cache_root=str(tmp_path))
        assert again.cells == first.cells
        assert len(list(tmp_path.glob("matrix-cell-*.pkl"))) == n_entries

    def test_replicated_kill_and_resume_matches_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        import repro.scenarios.matrix as matrix_mod

        base = run_matrix(self.SCENARIOS[:1], self.BACKENDS, quick=True,
                          seed=0, replicates=2)
        ckpt_dir = str(tmp_path / "ckpts")
        monkeypatch.setenv("REPRO_MATRIX_KILL_AFTER", "5")
        monkeypatch.setattr(matrix_mod, "_ckpt_writes", 0)
        with pytest.raises(SystemExit, match="simulated kill"):
            run_matrix(self.SCENARIOS[:1], self.BACKENDS, quick=True, seed=0,
                       replicates=2, checkpoint_dir=ckpt_dir)
        monkeypatch.delenv("REPRO_MATRIX_KILL_AFTER")
        resumed = run_matrix(self.SCENARIOS[:1], self.BACKENDS, quick=True,
                             seed=0, replicates=2, checkpoint_dir=ckpt_dir)
        assert _normalized_doc(resumed) == _normalized_doc(base)
        assert not list((tmp_path / "ckpts").glob("*.ckpt"))


class TestReplicatesCLI:
    def test_replicated_sweep_writes_aggregated_outputs(self, tmp_path,
                                                        capsys):
        rc = experiments_main([
            "matrix", "--quick", "--no-cache", "--seed", "0",
            "--scenarios", "outlier-burst,duplicate-flood",
            "--backends", "offline,insertion-only",
            "--replicates", "2", "--results-dir", str(tmp_path),
        ])
        assert rc == 0
        assert "Pairwise significance" in capsys.readouterr().out
        doc = json.loads((tmp_path / "matrix.json").read_text())
        assert doc["replicates"] == 2
        assert len(doc["cells"]) == 2 * 2 * 2
        assert {"summary", "significance"} <= set(doc)
        assert "Statistical summary" in (tmp_path / "matrix.md").read_text()

    def test_bad_replicates_exits_2(self, capsys):
        assert experiments_main(["matrix", "--replicates", "0"]) == 2
        assert "--replicates" in capsys.readouterr().out

    def test_bad_alpha_exits_2(self, capsys):
        assert experiments_main(["matrix", "--alpha", "1.5"]) == 2
        assert "--alpha" in capsys.readouterr().out
