"""Unit tests for the simulated MPC substrate (machine, cluster, partition)."""

import numpy as np
import pytest

from repro.core import WeightedPointSet
from repro.mpc import (
    Machine,
    SimulatedMPC,
    partition_adversarial_outliers,
    partition_contiguous,
    partition_random,
    recommended_num_machines,
)


class TestMachine:
    def test_charge_tracks_peak(self):
        m = Machine(0)
        m.charge(10)
        m.charge(5)
        m.release(12)
        m.charge(1)
        assert m.peak_items == 15 and m.current_items == 4

    def test_release_validation(self):
        m = Machine(0)
        m.charge(3)
        with pytest.raises(ValueError):
            m.release(4)
        with pytest.raises(ValueError):
            m.release(-1)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Machine(0).charge(-1)


class TestSimulatedMPC:
    def test_roles(self):
        c = SimulatedMPC(4)
        assert c.coordinator.is_coordinator
        assert len(c.workers) == 3
        assert all(not w.is_coordinator for w in c.workers)

    def test_message_delivery_and_rounds(self):
        c = SimulatedMPC(3)
        c.send(1, 0, "hello", items=5)
        c.send(2, 0, "world", items=7)
        assert c.coordinator.inbox == []  # not delivered yet
        c.end_round()
        payloads = sorted(p for _, p in c.coordinator.inbox)
        assert payloads == ["hello", "world"]
        assert c.stats().rounds == 1
        assert c.stats().total_communication == 12

    def test_inbox_charged_to_recipient(self):
        c = SimulatedMPC(2)
        c.send(1, 0, "x", items=9)
        c.end_round()
        assert c.coordinator.peak_items == 9

    def test_inbox_cleared_between_rounds(self):
        c = SimulatedMPC(2)
        c.send(1, 0, "a", items=1)
        c.end_round()
        c.end_round()
        assert c.coordinator.inbox == []

    def test_broadcast(self):
        c = SimulatedMPC(4)
        c.broadcast(2, "v", items=3)
        c.end_round()
        for m in c.machines:
            if m.mid == 2:
                assert m.inbox == []
            else:
                assert m.inbox == [(2, "v")]
        assert c.stats().total_communication == 9

    def test_stats_worker_peak(self):
        c = SimulatedMPC(3)
        c.machines[1].charge(100)
        c.machines[0].charge(7)
        st = c.stats()
        assert st.worker_peak == 100 and st.coordinator_peak == 7
        assert st.per_machine_peak == (7, 100, 0)

    def test_send_validation(self):
        c = SimulatedMPC(2)
        with pytest.raises(ValueError):
            c.send(0, 5, "x", items=1)
        with pytest.raises(ValueError):
            c.send(0, 1, "x", items=-1)

    def test_needs_one_machine(self):
        with pytest.raises(ValueError):
            SimulatedMPC(0)


class TestPartitions:
    def test_contiguous_covers_everything(self, small_set):
        parts = partition_contiguous(small_set, 5)
        assert sum(len(p) for p in parts) == len(small_set)
        assert WeightedPointSet.concat(parts).total_weight == small_set.total_weight

    def test_contiguous_balanced(self, small_set):
        parts = partition_contiguous(small_set, 5)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_random_covers_everything(self, small_set, rng):
        parts = partition_random(small_set, 5, rng)
        assert sum(len(p) for p in parts) == len(small_set)

    def test_random_roughly_balanced(self, rng):
        P = WeightedPointSet.from_points(rng.normal(size=(5000, 1)))
        parts = partition_random(P, 5, rng)
        sizes = np.array([len(p) for p in parts])
        assert sizes.min() > 800 and sizes.max() < 1200

    def test_adversarial_outliers_on_one_machine(self, small_planar, rng):
        P = small_planar.point_set()
        parts = partition_adversarial_outliers(P, small_planar.outlier_mask, 4, rng)
        assert sum(len(p) for p in parts) == len(P)
        # all outlier coordinates are in part 1
        out_coords = {tuple(p) for p in P.points[small_planar.outlier_mask]}
        part1 = {tuple(p) for p in parts[1].points}
        assert out_coords <= part1
        for i in (0, 2, 3):
            assert not (out_coords & {tuple(p) for p in parts[i].points})

    def test_adversarial_mask_validation(self, small_set, rng):
        with pytest.raises(ValueError):
            partition_adversarial_outliers(small_set, np.zeros(3, bool), 4, rng)

    def test_recommended_num_machines(self):
        m = recommended_num_machines(10**6, k=4, z=10, eps=0.5, d=2)
        assert 2 <= m < 10**6
        assert recommended_num_machines(0, 1, 0, 1.0, 1) == 2
