"""Failure-injection tests: what breaks when contracts are violated, and
that the breakage is *detected* rather than silent."""

import numpy as np

from repro.core import WeightedPointSet, verify_sandwich
from repro.lowerbounds import (
    DroppingMaintainer,
    Lemma12Instance,
    attack_lemma12,
)
from repro.mpc import one_round_coreset, partition_adversarial_outliers
from repro.sketches import SSparseRecovery
from repro.streaming import DynamicCoreset, InsertionOnlyCoreset
from repro.workloads import clustered_with_outliers


class TestRandomizedAlgorithmOnAdversarialInput:
    def test_one_round_underestimates_budget(self, rng):
        """Algorithm 6 run on an ADVERSARIAL partition (violating its
        input model): the per-machine budget z' is exceeded on the victim
        machine, which the union property then cannot repair; the 2-round
        algorithm exists precisely because of this."""
        z = 200
        wl = clustered_with_outliers(800, 2, z, d=2, rng=rng)
        P = wl.point_set()
        parts = partition_adversarial_outliers(P, wl.outlier_mask, 10, rng)
        res = one_round_coreset(parts, 2, z, 0.3)
        # the victim machine holds all z outliers but budgets only z'
        assert res.extras["zprime"] < z
        # weight is still preserved (the failure is geometric, not
        # accounting): the coreset may just be coarser than promised
        assert res.coreset.total_weight == P.total_weight


class TestSketchOverload:
    def test_overload_is_flagged_not_silent(self, rng):
        sk = SSparseRecovery(8, 10**6, rng=rng)
        for i in range(500):
            sk.update(i * 13 + 7, 1)
        res = sk.decode()
        assert not res.success  # overload reported

    def test_dynamic_coreset_skips_overloaded_grids(self, rng):
        """With a tiny s, the finest grids overload; the query must fall
        back to a coarser grid rather than return garbage."""
        dc = DynamicCoreset(1, 0, 1.0, 256, 2, rng=np.random.default_rng(0),
                            s_override=4)
        pts = rng.integers(1, 257, size=(60, 2))
        for p in pts:
            dc.insert(p)
        cs = dc.coreset()
        assert cs.total_weight == 60  # exact counts from the serving grid
        assert dc.selected_level() > 0


class TestTurnstileViolation:
    def test_phantom_delete_corrupts_detectably(self, rng):
        """Deleting a never-inserted point violates the strict-turnstile
        contract; the resulting negative cell weights must not decode into
        phantom positive items at the finest grid."""
        dc = DynamicCoreset(1, 0, 1.0, 64, 2, rng=np.random.default_rng(0))
        dc.insert((10, 10))
        dc.delete((50, 50))  # contract violation
        # level-0 sketch now holds a -1 cell; decode either fails (the cell
        # cannot peel) or reports only the genuine item -- never a phantom
        res = dc._sparse[0].decode()
        if res.success:
            assert all(v > 0 for v in res.items.values())


class TestUndersizedStreamingCap:
    def test_capped_structure_fails_lower_bound_instance(self):
        """Algorithm 3 with a cap below Omega(k/eps^d) either keeps the
        mandatory points anyway or produces a certified violation under
        the Lemma 12 adversary."""
        inst = Lemma12Instance.build(k=6, z=2, d=1, eps=1 / 16)
        st = InsertionOnlyCoreset(6, 2, 1.0, d=1, size_cap=10)
        rep = attack_lemma12(st, inst)
        assert rep.survived or rep.violated

    def test_exactness_of_violation_certificate(self):
        """The adversary's violation is certified: the reported bounds obey
        (1-eps) * opt_full_lb > opt_coreset_ub."""
        inst = Lemma12Instance.build(k=2, z=2, d=1, eps=1 / 8)
        rep = attack_lemma12(DroppingMaintainer(1, inst.cluster_points[0]), inst)
        assert rep.violated
        assert (1 - inst.eps) * rep.opt_full_lb > rep.opt_coreset_ub


class TestDegenerateInputs:
    def test_all_points_identical_everywhere(self, rng):
        P = WeightedPointSet.from_points(np.tile([[3.0, 3.0]], (40, 1)))
        st = InsertionOnlyCoreset(2, 2, 0.5, d=2)
        st.extend(P.points)
        assert st.size == 1
        assert verify_sandwich(P, st.coreset(), 2, 2, 0.5).ok

    def test_fewer_points_than_k_plus_z(self, rng):
        P = WeightedPointSet.from_points(rng.normal(size=(3, 2)))
        st = InsertionOnlyCoreset(5, 5, 0.5, d=2)
        st.extend(P.points)
        assert st.size == 3 and st.r == 0.0
