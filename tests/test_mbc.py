"""Unit tests for repro.core.mbc (Definition 2, Algorithm 1, Lemmas 4-7)."""

import numpy as np
import pytest

from repro.core import (
    WeightedPointSet,
    charikar_greedy,
    compose_errors,
    mbc_construction,
    mbc_size_bound,
    update_coreset,
    verify_covering_property,
    verify_mbc,
    verify_weight_property,
)


class TestMBCConstruction:
    def test_weight_preserved(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        assert verify_weight_property(small_set, mbc.coreset).ok

    def test_covering_within_mini_ball_radius(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        assert verify_covering_property(small_set, mbc, mbc.mini_ball_radius).ok

    def test_size_bound_lemma7(self, small_set):
        eps = 0.5
        mbc = mbc_construction(small_set, 2, 4, eps)
        assert mbc.size <= mbc_size_bound(2, 4, eps, 2)

    def test_full_verification(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        chk = verify_mbc(small_set, mbc, 2, 4, 0.5)
        assert chk.ok, chk.details

    def test_coreset_subset_of_input(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        input_rows = {tuple(p) for p in small_set.points}
        assert all(tuple(p) in input_rows for p in mbc.coreset.points)

    def test_eps_zero_keeps_distinct_points(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [1.0], [1.0], [3.0]]))
        mbc = mbc_construction(P, 2, 0, 0.0)
        assert mbc.size == 3  # coincident points merge even at eps=0
        assert mbc.coreset.total_weight == 4

    def test_smaller_eps_bigger_coreset(self, small_set):
        big = mbc_construction(small_set, 2, 4, 1.0).size
        small = mbc_construction(small_set, 2, 4, 0.1).size
        assert small >= big

    def test_external_radius_honored(self, small_set):
        r = charikar_greedy(small_set, 2, 4).radius
        mbc = mbc_construction(small_set, 2, 4, 0.5, radius=r)
        assert mbc.greedy_radius == r
        assert mbc.mini_ball_radius == pytest.approx(0.5 * r / 3)

    def test_order_invariance_of_guarantees(self, rng, small_set):
        for seed in range(3):
            order = np.random.default_rng(seed).permutation(len(small_set))
            mbc = mbc_construction(small_set, 2, 4, 0.5, order=order)
            assert verify_mbc(small_set, mbc, 2, 4, 0.5).ok
            assert mbc.size <= mbc_size_bound(2, 4, 0.5, 2)

    def test_negative_eps_rejected(self, small_set):
        with pytest.raises(ValueError):
            mbc_construction(small_set, 2, 4, -0.1)

    def test_empty_input(self):
        mbc = mbc_construction(WeightedPointSet.empty(2), 2, 1, 0.5)
        assert mbc.size == 0

    def test_assignment_partition(self, small_set):
        """Assignment defines a partition: every point assigned exactly one
        representative, and weights per group sum correctly (Def. 2(1))."""
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        assert (mbc.assignment >= 0).all()
        for j in range(mbc.size):
            grp = small_set.weights[mbc.assignment == j].sum()
            assert grp == mbc.coreset.weights[j]


class TestUpdateCoreset:
    def test_absorbs_within_delta(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [0.4], [2.0]]))
        mbc = update_coreset(P, 0.5)
        assert mbc.size == 2
        assert mbc.coreset.total_weight == 3

    def test_delta_zero_merges_coincident_only(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [0.0], [1.0]]))
        assert update_coreset(P, 0.0).size == 2

    def test_representatives_separated(self, small_set):
        """Any two representatives are more than delta apart."""
        delta = 0.8
        mbc = update_coreset(small_set, delta)
        from scipy.spatial.distance import pdist
        if mbc.size > 1:
            assert pdist(mbc.coreset.points).min() > delta


class TestComposition:
    def test_compose_errors_formula(self):
        assert compose_errors(0.1, 0.2) == pytest.approx(0.1 + 0.2 + 0.02)

    def test_transitive_property_lemma5(self, small_set):
        """MBC of an MBC is an MBC with composed error (verified via the
        covering distances)."""
        k, z = 2, 4
        g, e = 0.4, 0.4
        m1 = mbc_construction(small_set, k, z, g)
        m2 = mbc_construction(m1.coreset, k, z, e)
        eps_tot = compose_errors(g, e)
        # direct check: each original point within eps_tot * opt_ub of some
        # final representative
        from repro.core import nearest_center_distances, opt_bounds
        _, hi = opt_bounds(small_set, k, z)
        d = nearest_center_distances(small_set, m2.coreset.points)
        assert d.max() <= eps_tot * hi + 1e-9
        assert m2.coreset.total_weight == small_set.total_weight

    def test_union_property_lemma4(self, small_planar):
        """Union of per-part MBCs (with valid budgets) is an MBC of the
        whole."""
        P = small_planar.point_set()
        k, z, eps = 2, 4, 0.4
        # split so part 0 gets all outliers
        out_idx = np.flatnonzero(small_planar.outlier_mask)
        in_idx = np.flatnonzero(~small_planar.outlier_mask)
        half = len(in_idx) // 2
        parts = [
            P.subset(np.concatenate([in_idx[:half], out_idx])),
            P.subset(in_idx[half:]),
        ]
        budgets = [4, 0]
        pieces = [mbc_construction(p, k, zi, eps) for p, zi in zip(parts, budgets)]
        union = WeightedPointSet.concat([m.coreset for m in pieces])
        assert union.total_weight == P.total_weight
        from repro.core import nearest_center_distances, opt_bounds
        _, hi = opt_bounds(P, k, z)
        d = nearest_center_distances(P, union.points)
        assert d.max() <= eps * hi + 1e-9


class TestSizeBound:
    @pytest.mark.parametrize("k,z,eps,d", [(1, 0, 1.0, 1), (2, 5, 0.5, 2), (3, 2, 0.25, 1)])
    def test_formula(self, k, z, eps, d):
        from math import ceil
        assert mbc_size_bound(k, z, eps, d) == k * ceil(12 / eps) ** d + z

    def test_eps_zero_rejected(self):
        with pytest.raises(ValueError):
            mbc_size_bound(1, 0, 0.0, 1)
