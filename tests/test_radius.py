"""Unit tests for repro.core.radius."""

import numpy as np
import pytest

from repro.core import (
    WeightedPointSet,
    coverage_radius,
    min_pairwise_distance,
    nearest_center_distances,
    uncovered_weight,
)


class TestNearestCenterDistances:
    def test_basic(self, line_set):
        d = nearest_center_distances(line_set, np.array([[0.0], [9.0]]))
        assert d[0] == 0.0 and d[4] == 4.0 and d[9] == 0.0

    def test_no_centers_gives_inf(self, line_set):
        d = nearest_center_distances(line_set, np.zeros((0, 1)))
        assert np.isinf(d).all()

    def test_empty_points(self):
        P = WeightedPointSet.empty(2)
        assert nearest_center_distances(P, np.zeros((1, 2))).shape == (0,)


class TestCoverageRadius:
    def test_no_outliers(self, line_set):
        r = coverage_radius(line_set, np.array([[4.5]]), 0)
        assert r == pytest.approx(4.5)

    def test_outliers_drop_farthest(self, line_set):
        # dropping the two extreme points shrinks the radius
        r = coverage_radius(line_set, np.array([[4.5]]), 2)
        assert r == pytest.approx(3.5)

    def test_weighted_outlier_budget(self):
        # far point has weight 3 > z=2, cannot be dropped
        P = WeightedPointSet(np.array([[0.0], [10.0]]), [1, 3])
        r = coverage_radius(P, np.array([[0.0]]), 2)
        assert r == pytest.approx(10.0)

    def test_total_weight_below_z(self):
        P = WeightedPointSet(np.array([[0.0], [10.0]]))
        assert coverage_radius(P, np.zeros((0, 1)), 5) == 0.0

    def test_no_centers_infeasible(self, line_set):
        assert coverage_radius(line_set, np.zeros((0, 1)), 2) == float("inf")

    def test_exact_budget_boundary(self):
        P = WeightedPointSet(np.array([[0.0], [1.0], [2.0]]), [1, 1, 2])
        # z=2 drops exactly the weight-2 point at 2
        assert coverage_radius(P, np.array([[0.0]]), 2) == pytest.approx(1.0)

    def test_multiple_centers(self, line_set):
        r = coverage_radius(line_set, np.array([[2.0], [7.0]]), 0)
        assert r == pytest.approx(2.0)

    def test_weighted_tie_cum_equals_z_exactly(self):
        # center at 0: distances 0,1,5,9 -> farthest-first weights 3,2,1,1
        P = WeightedPointSet(np.array([[0.0], [1.0], [5.0], [9.0]]),
                             [1, 1, 2, 3])
        # cum after the farthest point is exactly z=3: drop it, and only it
        assert coverage_radius(P, np.array([[0.0]]), 3) == pytest.approx(5.0)
        # cum hits z=5 exactly after two points: both dropped
        assert coverage_radius(P, np.array([[0.0]]), 5) == pytest.approx(1.0)
        # z=4 sits strictly between cums 3 and 5: the weight-2 point is
        # indivisible, so it cannot be dropped
        assert coverage_radius(P, np.array([[0.0]]), 4) == pytest.approx(5.0)
        # z = total weight - 1: everything but the nearest point dropped
        assert coverage_radius(P, np.array([[0.0]]), 6) == pytest.approx(0.0)


class TestUncoveredWeight:
    def test_counts_strictly_outside(self, line_set):
        w = uncovered_weight(line_set, np.array([[0.0]]), 4.0)
        assert w == 5  # points 5..9

    def test_boundary_counts_as_covered(self, line_set):
        w = uncovered_weight(line_set, np.array([[0.0]]), 9.0)
        assert w == 0

    def test_empty(self):
        assert uncovered_weight(WeightedPointSet.empty(1), np.zeros((1, 1)), 1.0) == 0

    def test_fractional_weights_are_exact_not_truncated(self):
        # WeightedPointSet pins integer weights, but the function is also
        # used on duck-typed fractional coresets (merged/relaxed weights);
        # the pre-1.5 int(...) truncated 2.9 -> 2, hiding a z=2 violation
        class FracSet:
            def __init__(self, points, weights):
                self.points = np.asarray(points, dtype=float)
                self.weights = np.asarray(weights, dtype=float)

            def __len__(self):
                return len(self.points)

        P = FracSet([[0.0], [10.0], [11.0]], [1.0, 2.4, 0.5])
        w = uncovered_weight(P, np.array([[0.0]]), 1.0)
        assert isinstance(w, float)
        assert w == pytest.approx(2.9)
        # the tolerance compare against budget z=2 must flag the violation
        z = 2
        assert not w <= z + 1e-9 * max(1.0, z)

    def test_integer_weights_unchanged(self, line_set):
        w = uncovered_weight(line_set, np.array([[0.0]]), 4.0)
        assert w == 5.0 and float(w).is_integer()


class TestMinPairwiseDistance:
    def test_line(self, line_set):
        assert min_pairwise_distance(line_set.points) == pytest.approx(1.0)

    def test_coincident_gives_zero(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [5.0, 5.0]])
        assert min_pairwise_distance(pts) == 0.0

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            min_pairwise_distance(np.zeros((1, 2)))

    def test_chunked_matches_direct(self, rng):
        pts = rng.normal(size=(1500, 2))
        from scipy.spatial.distance import pdist
        assert min_pairwise_distance(pts) == pytest.approx(pdist(pts).min())

    def test_respects_metric(self):
        pts = np.array([[0.0, 0.0], [1.0, 3.0]])
        assert min_pairwise_distance(pts, "linf") == pytest.approx(3.0)
        assert min_pairwise_distance(pts, "l1") == pytest.approx(4.0)
