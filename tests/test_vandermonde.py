"""Tests for the deterministic Vandermonde sparse recovery (§5 discussion)."""

import numpy as np
import pytest

from repro.sketches import PRIME_31, VandermondeSketch, berlekamp_massey


class TestBerlekampMassey:
    def test_geometric_sequence(self):
        p = PRIME_31
        seq = [pow(5, t, p) for t in range(6)]
        loc = berlekamp_massey(seq, p)
        assert len(loc) - 1 == 1
        # Lambda(x) = 1 - 5x
        assert loc[1] == (-5) % p

    def test_two_term_prony(self):
        p = PRIME_31
        seq = [(2 * pow(3, t, p) + 5 * pow(7, t, p)) % p for t in range(8)]
        loc = berlekamp_massey(seq, p)
        assert len(loc) - 1 == 2
        # (1-3x)(1-7x) = 1 - 10x + 21x^2
        assert loc[1] == (-10) % p and loc[2] == 21

    def test_zero_sequence(self):
        assert berlekamp_massey([0, 0, 0, 0]) == [1]

    def test_recurrence_validates(self):
        p = PRIME_31
        rng = np.random.default_rng(0)
        roots = [int(rng.integers(2, 1000)) for _ in range(4)]
        ws = [int(rng.integers(1, 50)) for _ in range(4)]
        seq = [sum(w * pow(r, t, p) for w, r in zip(ws, roots)) % p for t in range(10)]
        loc = berlekamp_massey(seq, p)
        L = len(loc) - 1
        for n in range(L, 10):
            acc = sum(loc[i] * seq[n - i] for i in range(L + 1)) % p
            assert acc == 0


class TestVandermondeSketch:
    def test_exact_recovery(self, rng):
        sk = VandermondeSketch(10, 10**6)
        truth = {}
        for _ in range(10):
            k = int(rng.integers(0, 10**6))
            w = int(rng.integers(1, 100))
            sk.update(k, w)
            truth[k] = truth.get(k, 0) + w
        res = sk.decode()
        assert res.success and res.items == truth

    def test_recovery_after_deletions(self, rng):
        sk = VandermondeSketch(6, 10**4)
        for i in range(100):
            sk.update(i, 1)
        for i in range(96):
            sk.update(i, -1)
        res = sk.decode()
        assert res.success and res.items == {96: 1, 97: 1, 98: 1, 99: 1}

    def test_deterministic_no_rng(self):
        """Two sketches over the same stream are bit-identical — the whole
        point of the §5 extension."""
        a, b = VandermondeSketch(4, 1000), VandermondeSketch(4, 1000)
        for sk in (a, b):
            sk.update(1, 2)
            sk.update(999, 7)
        assert np.array_equal(a._y, b._y)
        assert a.decode().items == b.decode().items == {1: 2, 999: 7}

    def test_empty(self):
        sk = VandermondeSketch(4, 100)
        assert sk.is_empty
        res = sk.decode()
        assert res.success and res.items == {}

    def test_overload_detected_within_check_window(self):
        # support s < ||F||_0 <= s + check is PROVABLY detected
        sk = VandermondeSketch(4, 10**4, check=4)
        for i in range(6):  # 6 in (4, 8]
            sk.update(i * 97 + 1, 1)
        assert not sk.decode().success

    def test_heavy_overload_detected(self):
        sk = VandermondeSketch(4, 10**4, check=4)
        for i in range(50):
            sk.update(i * 13 + 2, 1)
        assert not sk.decode().success

    def test_boundary_sparsity(self):
        sk = VandermondeSketch(5, 1000)
        truth = {i * 37: i + 1 for i in range(5)}
        for k, w in truth.items():
            sk.update(k, w)
        res = sk.decode()
        assert res.success and res.items == truth

    def test_key_zero_and_max(self):
        sk = VandermondeSketch(2, 1000)
        sk.update(0, 3)
        sk.update(999, 4)
        assert sk.decode().items == {0: 3, 999: 4}

    def test_insert_delete_cancels_exactly(self):
        sk = VandermondeSketch(3, 100)
        sk.update(42, 5)
        sk.update(42, -5)
        assert sk.is_empty and sk.decode().items == {}

    def test_storage_accounting(self):
        sk = VandermondeSketch(8, 100, check=4)
        assert sk.storage_cells == 2 * 8 + 4

    def test_validation(self):
        with pytest.raises(ValueError):
            VandermondeSketch(0, 100)
        with pytest.raises(ValueError):
            VandermondeSketch(4, PRIME_31)
        sk = VandermondeSketch(2, 10)
        with pytest.raises(ValueError):
            sk.update(10, 1)
