"""Tests for the stream event model."""

import numpy as np
import pytest

from repro.streaming import UpdateEvent, dynamic_stream, insertion_stream, live_set, replay


class TestUpdateEvent:
    def test_sign_validation(self):
        with pytest.raises(ValueError):
            UpdateEvent((0.0,), 2, 0)

    def test_hashable(self):
        assert hash(UpdateEvent((1.0, 2.0), 1, 0)) is not None


class TestInsertionStream:
    def test_wraps_points(self):
        evs = insertion_stream(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert [e.point for e in evs] == [(1.0, 2.0), (3.0, 4.0)]
        assert all(e.sign == 1 for e in evs)
        assert [e.time for e in evs] == [0, 1]


class TestDynamicStream:
    def test_valid_turnstile(self):
        evs = dynamic_stream([(np.array([1.0]), 1), (np.array([1.0]), -1)])
        assert [e.sign for e in evs] == [1, -1]

    def test_turnstile_violation(self):
        with pytest.raises(ValueError):
            dynamic_stream([(np.array([1.0]), -1)])

    def test_violation_after_balance(self):
        with pytest.raises(ValueError):
            dynamic_stream([
                (np.array([1.0]), 1), (np.array([1.0]), -1), (np.array([1.0]), -1),
            ])


class TestLiveSetAndReplay:
    def test_live_set_multiset(self):
        evs = dynamic_stream([
            (np.array([1.0]), 1), (np.array([1.0]), 1), (np.array([2.0]), 1),
            (np.array([1.0]), -1),
        ])
        live = live_set(evs)
        assert sorted(live) == [(1.0,), (2.0,)]

    def test_replay_into_sink(self):
        class Sink:
            def __init__(self):
                self.ops = []
            def insert(self, p):
                self.ops.append(("i", float(p[0])))
            def delete(self, p):
                self.ops.append(("d", float(p[0])))

        evs = dynamic_stream([(np.array([1.0]), 1), (np.array([1.0]), -1)])
        s = Sink()
        replay(evs, s)
        assert s.ops == [("i", 1.0), ("d", 1.0)]
