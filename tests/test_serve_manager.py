"""SessionManager: LRU eviction, transparent restore, recovery, cadence."""

import os

import numpy as np
import pytest

from repro.api import KCenterSession, ProblemSpec
from repro.serve import SessionManager, WireError
from repro.serve.manager import SPOOL_SUFFIX

SPEC = dict(k=3, z=4, eps=0.5, dim=2, seed=0)


def _spec():
    return ProblemSpec(**SPEC)


def _points(seed, n=96, d=2):
    return np.random.default_rng(seed).normal(size=(n, d)) * 4.0


def _spool_path(mgr, name):
    return os.path.join(mgr.spool_dir, name + SPOOL_SUFFIX)


class TestLifecycle:
    def test_create_extend_solve_info(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool")
        info = mgr.create("a", _spec(), "insertion-only")
        assert info["name"] == "a" and info["resident"] and not info["spooled"]
        out = mgr.extend("a", _points(0))
        assert out["applied"] == 96 and out["updates"] == 96
        assert out["backend"] == "insertion-only"
        sol = mgr.solve("a")
        assert sol["radius"] > 0 and len(sol["centers"]) <= SPEC["k"]
        assert mgr.info("a")["updates"] == 96
        assert [s["name"] for s in mgr.list_sessions()] == ["a"]

    def test_duplicate_create_conflicts(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool")
        mgr.create("a", _spec(), "insertion-only")
        with pytest.raises(WireError) as exc:
            mgr.create("a", _spec(), "insertion-only")
        assert exc.value.status == 409

    def test_bad_backend_rolls_back_registration(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool")
        with pytest.raises(WireError) as exc:
            mgr.create("a", _spec(), "insertion-only", {"no_such_option": 1})
        assert exc.value.status == 400
        # the name is free again after the failed construction
        mgr.create("a", _spec(), "insertion-only")

    def test_unknown_session_is_404(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool")
        for op in (lambda: mgr.extend("ghost", _points(0)),
                   lambda: mgr.solve("ghost"),
                   lambda: mgr.save("ghost"),
                   lambda: mgr.info("ghost"),
                   lambda: mgr.drop("ghost")):
            with pytest.raises(WireError) as exc:
                op()
            assert exc.value.status == 404

    def test_drop_removes_spool_file(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool")
        mgr.create("a", _spec(), "insertion-only")
        mgr.extend("a", _points(0))
        mgr.save("a")
        assert os.path.exists(_spool_path(mgr, "a"))
        mgr.drop("a")
        assert not os.path.exists(_spool_path(mgr, "a"))
        assert mgr.session_count() == 0

    def test_delete_points_unsupported_maps_to_409(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool")
        mgr.create("a", _spec(), "insertion-only")
        mgr.extend("a", _points(0))
        with pytest.raises(WireError) as exc:
            mgr.delete_points("a", _points(0)[:4])
        assert exc.value.status == 409

    def test_delete_points_on_dynamic_backend(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool")
        mgr.create("a", _spec(), "dynamic",
                   {"delta_universe": 64, "s_override": 24})
        pts = np.random.default_rng(1).integers(
            1, 64, size=(48, 2)).astype(float)
        mgr.extend("a", pts)
        out = mgr.delete_points("a", pts[:8])
        assert out["applied"] == 8

    def test_close_rejects_new_creates(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool")
        mgr.create("a", _spec(), "insertion-only")
        mgr.extend("a", _points(0))
        written = mgr.close()
        assert written == 1
        with pytest.raises(WireError) as exc:
            mgr.create("b", _spec(), "insertion-only")
        assert exc.value.status == 503


class TestEviction:
    def test_lru_eviction_spools_and_restores_transparently(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool", max_resident=2)
        control = KCenterSession.from_spec(_spec(), backend="insertion-only")
        pts1, pts2 = _points(10), _points(11)
        control.extend(pts1)
        control.extend(pts2)

        mgr.create("a", _spec(), "insertion-only")
        mgr.extend("a", pts1)
        mgr.create("b", _spec(), "insertion-only")
        mgr.create("c", _spec(), "insertion-only")  # evicts LRU ("a")
        assert mgr.resident_count() <= 2
        assert mgr.session_count() == 3
        assert os.path.exists(_spool_path(mgr, "a"))
        listing = {s["name"]: s for s in mgr.list_sessions()}
        assert not listing["a"]["resident"] and listing["a"]["spooled"]
        assert listing["a"]["updates"] == len(pts1)  # hint survives eviction

        # touching the evicted session restores it and continues seamlessly
        out = mgr.extend("a", pts2)
        assert out["updates"] == control.updates_seen
        want = control.solve(method="greedy3")
        got = mgr.solve("a")
        assert got["radius"] == want.radius
        assert np.array_equal(np.asarray(got["centers"]), want.centers)
        assert mgr.registry.render().count("repro_serve_restores_total 1")

    def test_eviction_respects_cap_under_churn(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool", max_resident=3)
        for i in range(9):
            mgr.create(f"s{i}", _spec(), "insertion-only")
            mgr.extend(f"s{i}", _points(i, n=16))
        assert mgr.resident_count() <= 3
        assert mgr.session_count() == 9
        # every evicted session is backed by a spool file
        for s in mgr.list_sessions():
            if not s["resident"]:
                assert os.path.exists(_spool_path(mgr, s["name"]))

    def test_corrupt_spool_restore_is_500(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool", max_resident=1)
        mgr.create("a", _spec(), "insertion-only")
        mgr.extend("a", _points(0))
        mgr.create("b", _spec(), "insertion-only")  # evicts "a"
        with open(_spool_path(mgr, "a"), "wb") as fh:
            fh.write(b"not a zip")
        with pytest.raises(WireError) as exc:
            mgr.solve("a")
        assert exc.value.status == 500
        assert exc.value.code == "restore-failed"


class TestCheckpointCadence:
    def test_periodic_checkpoint_fires_on_cadence(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool", checkpoint_every=100)
        mgr.create("a", _spec(), "insertion-only")
        assert mgr.extend("a", _points(0, n=60))["checkpointed"] is False
        assert not os.path.exists(_spool_path(mgr, "a"))
        assert mgr.extend("a", _points(1, n=60))["checkpointed"] is True
        assert os.path.exists(_spool_path(mgr, "a"))
        # dirty counter resets after the checkpoint
        assert mgr.extend("a", _points(2, n=60))["checkpointed"] is False

    def test_per_session_cadence_overrides_default(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool", checkpoint_every=10_000)
        mgr.create("a", _spec(), "insertion-only", checkpoint_every=32)
        assert mgr.extend("a", _points(0, n=32))["checkpointed"] is True

    def test_cadence_disabled(self, tmp_path):
        mgr = SessionManager(tmp_path / "spool", checkpoint_every=None)
        mgr.create("a", _spec(), "insertion-only")
        assert mgr.extend("a", _points(0, n=500))["checkpointed"] is False
        assert not os.path.exists(_spool_path(mgr, "a"))


class TestRecovery:
    def test_recover_round_trips_sessions(self, tmp_path):
        spool = tmp_path / "spool"
        mgr = SessionManager(spool)
        pts = {n: _points(i) for i, n in enumerate(("a", "b", "c"))}
        for name, p in pts.items():
            mgr.create(name, _spec(), "insertion-only", checkpoint_every=7,
                       reference_radius=2.5)
            mgr.extend(name, p)
        want = {n: mgr.solve(n) for n in pts}
        assert mgr.close() >= 0

        fresh = SessionManager(spool)
        recovered, skipped = fresh.recover()
        assert recovered == sorted(pts)
        assert skipped == []
        assert fresh.resident_count() == 0  # lazy: manifests only
        for name in pts:
            info = fresh.info(name)
            assert info["spooled"] and not info["resident"]
            assert info["updates"] == len(pts[name])
            assert info["checkpoint_every"] == 7  # serve options survive
            assert info["reference_radius"] == 2.5
            got = fresh.solve(name)
            assert got["radius"] == want[name]["radius"]
            assert got["centers"] == want[name]["centers"]
            assert got["radius_ratio"] == pytest.approx(got["radius"] / 2.5)

    def test_recover_skips_garbage_and_foreign_files(self, tmp_path):
        spool = tmp_path / "spool"
        mgr = SessionManager(spool)
        mgr.create("good", _spec(), "insertion-only")
        mgr.extend("good", _points(0))
        mgr.close()
        (spool / "garbage.snap").write_bytes(b"\x00\x01")
        (spool / "not-a-snapshot.txt").write_text("ignored")
        (spool / ".hidden.snap").write_bytes(b"zip?")  # unsafe name
        fresh = SessionManager(spool)
        recovered, skipped = fresh.recover()
        assert recovered == ["good"]
        assert len(skipped) == 2
        assert any("unsafe session name" in s for s in skipped)

    def test_recover_is_idempotent(self, tmp_path):
        spool = tmp_path / "spool"
        mgr = SessionManager(spool)
        mgr.create("a", _spec(), "insertion-only")
        mgr.extend("a", _points(0))
        mgr.close()
        fresh = SessionManager(spool)
        assert fresh.recover()[0] == ["a"]
        assert fresh.recover()[0] == []  # already registered
        assert fresh.session_count() == 1
