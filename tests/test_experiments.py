"""Smoke tests for the experiment drivers (small parameters)."""


from repro.experiments import (
    Row,
    coreset_quality_rows,
    dynamic_lb_rows,
    format_table,
    geometry_rows,
    insertion_lb_rows,
    mpc_multi_round_rows,
    mpc_one_round_rows,
    mpc_two_round_rows,
    omega_z_lb_rows,
    sliding_lb_rows,
    sliding_window_rows,
    streaming_insertion_rows,
)


class TestReport:
    def test_format_table_alignment(self):
        rows = [
            Row("E0", "a", {"x": 1}, {"m": 2.0}),
            Row("E0", "bbbb", {"x": 10}, {"m": 0.123456}),
        ]
        out = format_table(rows, "t")
        lines = out.splitlines()
        assert lines[0] == "== t =="
        assert "exp" in lines[1] and "algorithm" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], "t")

    def test_nan_rendered(self):
        out = format_table([Row("E", "a", {}, {"q": float("nan")})])
        assert "nan" in out


class TestDriversSmoke:
    def test_mpc_two_round(self):
        rows = mpc_two_round_rows(n=300, z_values=(4,), m=3)
        assert {r.algorithm for r in rows} == {"ours-2round", "cpp19-det"}
        for r in rows:
            assert r.metrics["coreset"] > 0

    def test_mpc_one_round(self):
        rows = mpc_one_round_rows(n=300, z_values=(4,))
        assert len(rows) == 2

    def test_mpc_multi_round(self):
        rows = mpc_multi_round_rows(n=300, m=4, rounds_values=(1, 2))
        assert [r.params["R"] for r in rows] == [1, 2]

    def test_streaming(self):
        rows = streaming_insertion_rows(n=300, eps_values=(1.0,), z_values=(4,))
        assert len(rows) == 3  # ours, cpp, mk

    def test_sliding(self):
        rows = sliding_window_rows(n=400, window=100, z_values=(2,))
        assert rows[0].metrics["stored"] > 0

    def test_lower_bound_drivers(self):
        assert all(
            r.metrics.get("fatal", r.metrics.get("claim38_ok", 1)) is not None
            for r in insertion_lb_rows(configs=((2, 2, 1, 1 / 8),))
            + omega_z_lb_rows(configs=((2, 3),))
            + dynamic_lb_rows(delta_values=(2**10,))
            + sliding_lb_rows(g=2)
            + geometry_rows(configs=((1, 1 / 8),))
        )

    def test_quality_driver(self):
        rows = coreset_quality_rows(n=300)
        assert len(rows) == 4
        for r in rows:
            assert r.metrics["quality"] > 0
