"""Unit tests for repro.sketches (hashing, 1-sparse, s-sparse, F0)."""

import numpy as np
import pytest

from repro.sketches import (
    F0Estimator,
    KWiseHash,
    OneSparseCell,
    SSparseRecovery,
)


class TestKWiseHash:
    def test_range(self, rng):
        h = KWiseHash(97, k=2, rng=rng)
        vals = h(np.arange(1000))
        assert vals.min() >= 0 and vals.max() < 97

    def test_deterministic(self, rng):
        h = KWiseHash(97, k=2, rng=rng)
        assert h.hash_int(42) == h.hash_int(42)
        assert h(np.array([42]))[0] == h.hash_int(42)

    def test_scalar_call(self, rng):
        h = KWiseHash(10, rng=rng)
        assert isinstance(h(5), int)

    def test_spread(self, rng):
        h = KWiseHash(16, k=2, rng=rng)
        counts = np.bincount(h(np.arange(4096)), minlength=16)
        # pairwise-independent hash should be roughly balanced
        assert counts.min() > 128 and counts.max() < 512

    def test_independent_instances_differ(self):
        a = KWiseHash(1000, rng=np.random.default_rng(1))
        b = KWiseHash(1000, rng=np.random.default_rng(2))
        vals_a, vals_b = a(np.arange(100)), b(np.arange(100))
        assert (vals_a != vals_b).any()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            KWiseHash(0, rng=rng)
        with pytest.raises(ValueError):
            KWiseHash(10, k=0, rng=rng)


class TestOneSparseCell:
    def test_empty_cell(self):
        c = OneSparseCell(zeta=7)
        assert c.is_zero and c.decode() is None

    def test_singleton_decodes(self):
        c = OneSparseCell(zeta=12345)
        c.update(42, 3)
        assert c.decode() == (42, 3)

    def test_insert_delete_cancels(self):
        c = OneSparseCell(zeta=12345)
        c.update(42, 2)
        c.update(42, -2)
        assert c.is_zero

    def test_collision_detected(self):
        c = OneSparseCell(zeta=987654321)
        c.update(10, 1)
        c.update(20, 1)
        assert c.decode() is None  # ws/w = 15, fingerprint mismatch whp

    def test_collision_resolves_after_removal(self):
        c = OneSparseCell(zeta=987654321)
        c.update(10, 1)
        c.update(20, 1)
        c.subtract_item(20, 1)
        assert c.decode() == (10, 1)

    def test_negative_total_no_decode(self):
        c = OneSparseCell(zeta=3)
        c.update(5, -2)
        assert c.decode() is None

    def test_key_zero(self):
        c = OneSparseCell(zeta=3)
        c.update(0, 4)
        assert c.decode() == (0, 4)


class TestSSparseRecovery:
    def test_exact_recovery_under_capacity(self, rng):
        sk = SSparseRecovery(16, 10**9, rng=rng)
        truth = {int(rng.integers(0, 10**9)): int(rng.integers(1, 10)) for _ in range(12)}
        for k, v in truth.items():
            sk.update(k, v)
        res = sk.decode()
        assert res.success and res.items == truth

    def test_recovery_after_deletions(self, rng):
        sk = SSparseRecovery(10, 10**6, rng=rng)
        for i in range(300):
            sk.update(i, 1)
        for i in range(295):
            sk.update(i, -1)
        res = sk.decode()
        assert res.success
        assert res.items == {i: 1 for i in range(295, 300)}

    def test_overload_detected(self, rng):
        sk = SSparseRecovery(8, 10**6, rng=rng)
        for i in range(200):
            sk.update(i * 7 + 1, 1)
        assert not sk.decode().success

    def test_empty_sketch(self, rng):
        sk = SSparseRecovery(4, 100, rng=rng)
        res = sk.decode()
        assert res.success and res.items == {}
        assert sk.is_empty

    def test_update_validation(self, rng):
        sk = SSparseRecovery(4, 100, rng=rng)
        with pytest.raises(ValueError):
            sk.update(100, 1)
        with pytest.raises(ValueError):
            sk.update(-1, 1)

    def test_zero_delta_noop(self, rng):
        sk = SSparseRecovery(4, 100, rng=rng)
        sk.update(5, 0)
        assert sk.is_empty

    def test_update_many(self, rng):
        sk = SSparseRecovery(8, 1000, rng=rng)
        sk.update_many([1, 2, 3], 1)
        sk.update_many([2], -1)
        assert sk.decode().items == {1: 1, 3: 1}

    def test_storage_cells_accounting(self, rng):
        sk = SSparseRecovery(16, 10**6, delta=0.01, rng=rng)
        assert sk.storage_cells == sk.rows * sk.buckets
        assert sk.buckets >= 2 * 16

    def test_decode_nondestructive(self, rng):
        sk = SSparseRecovery(8, 100, rng=rng)
        sk.update(7, 2)
        assert sk.decode().items == {7: 2}
        assert sk.decode().items == {7: 2}

    def test_weighted_counts_exact(self, rng):
        sk = SSparseRecovery(8, 1000, rng=rng)
        sk.update(10, 1000000)
        sk.update(20, 5)
        res = sk.decode()
        assert res.items == {10: 1000000, 20: 5}

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            SSparseRecovery(0, 10, rng=rng)
        with pytest.raises(ValueError):
            SSparseRecovery(5, 0, rng=rng)


class TestF0Estimator:
    def test_exact_when_small(self, rng):
        f0 = F0Estimator(10**6, eps=0.5, rng=rng)
        for i in range(20):
            f0.update(i * 31 + 2, 1)
        assert f0.estimate() == 20.0

    def test_deletions(self, rng):
        f0 = F0Estimator(10**6, eps=0.5, rng=rng)
        for i in range(50):
            f0.update(i, 1)
        for i in range(50):
            f0.update(i, -1)
        assert f0.estimate() == 0.0

    def test_large_approximate(self, rng):
        f0 = F0Estimator(10**6, eps=0.5, rng=rng)
        n = 2000
        for i in range(n):
            f0.update(i * 17 + 3, 1)
        est = f0.estimate()
        assert 0.4 * n <= est <= 2.5 * n  # generous; median of 3 instances

    def test_at_most_thresholding(self, rng):
        f0 = F0Estimator(10**6, eps=0.5, rng=rng)
        for i in range(30):
            f0.update(i, 1)
        assert f0.at_most(30)
        assert not f0.at_most(5)

    def test_key_validation(self, rng):
        f0 = F0Estimator(100, rng=rng)
        with pytest.raises(ValueError):
            f0.update(100, 1)

    def test_eps_validation(self, rng):
        with pytest.raises(ValueError):
            F0Estimator(100, eps=0.0, rng=rng)
        with pytest.raises(ValueError):
            F0Estimator(100, eps=1.5, rng=rng)

    def test_storage_accounting(self, rng):
        f0 = F0Estimator(10**4, eps=0.5, repetitions=2, rng=rng)
        assert f0.storage_cells > 0
