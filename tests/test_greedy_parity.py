"""Bit-for-bit parity of the incremental radius-search stack against the
frozen pre-refactor reference (:mod:`repro.core._greedy_reference`).

The kernels refactor rewrote ``_greedy_disks`` / ``_geometric_decision``
to maintain gains incrementally and ``_greedy_absorb`` to prune
candidates through a grid; because all library weights are integers
(exact in float64), every intermediate sum matches the recomputed one
exactly, so the outputs must be *identical*, not merely close.  These
tests enforce that on randomized weighted instances, plus the
float-feasibility bugfix regression (fractional uncovered weight
``z + 0.9`` must no longer pass as feasible).
"""

import numpy as np
import pytest

from repro.core import WeightedPointSet, charikar_greedy, mbc_construction
from repro.core._greedy_reference import (
    charikar_greedy_reference,
    geometric_decision_reference,
    greedy_absorb_reference,
    greedy_disks_reference,
)
from repro.core.greedy import _geometric_decision, _greedy_disks
from repro.core.mbc import _greedy_absorb
from repro.core.metrics import PrecomputedMetric, get_metric

METRICS = ("euclidean", "chebyshev", "manhattan")


def _random_instance(rng, n_max=160):
    n = int(rng.integers(3, n_max))
    d = int(rng.integers(1, 4))
    pts = rng.normal(size=(n, d)) * float(rng.choice([0.1, 1.0, 50.0]))
    if rng.random() < 0.3:  # duplicates exercise the radius-0 branches
        pts[int(rng.integers(0, n))] = pts[int(rng.integers(0, n))]
    w = rng.integers(1, 7, n)
    return WeightedPointSet(pts, w)


def _assert_same_result(a, b):
    assert a.radius == b.radius
    assert a.guess == b.guess
    np.testing.assert_array_equal(a.centers_idx, b.centers_idx)
    np.testing.assert_array_equal(a.uncovered, b.uncovered)


class TestCharikarParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_pairwise_path_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        P = _random_instance(rng)
        k = int(rng.integers(1, 6))
        z = int(rng.integers(0, 9))
        met = get_metric(str(rng.choice(METRICS)))
        _assert_same_result(
            charikar_greedy(P, k, z, met),
            charikar_greedy_reference(P, k, z, met),
        )

    @pytest.mark.parametrize("seed", range(12, 24))
    def test_geometric_path_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        P = _random_instance(rng)
        k = int(rng.integers(1, 6))
        z = int(rng.integers(0, 9))
        met = get_metric(str(rng.choice(METRICS)))
        # a tiny pairwise_limit forces the chunked geometric search
        _assert_same_result(
            charikar_greedy(P, k, z, met, pairwise_limit=8),
            charikar_greedy_reference(P, k, z, met, pairwise_limit=8),
        )

    def test_precomputed_metric_bit_identical(self):
        rng = np.random.default_rng(99)
        n = 40
        raw = rng.random((n, 2))
        D = np.round(
            np.abs(raw[:, None, :] - raw[None, :, :]).sum(-1), 6
        )
        D = (D + D.T) / 2.0
        np.fill_diagonal(D, 0.0)
        met = PrecomputedMetric(D, doubling=2)
        ids = np.arange(n, dtype=float).reshape(-1, 1)
        P = WeightedPointSet(ids, rng.integers(1, 5, n))
        _assert_same_result(
            charikar_greedy(P, 3, 4, met),
            charikar_greedy_reference(P, 3, 4, met),
        )

    def test_decision_procedure_bit_identical(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n = int(rng.integers(4, 80))
            pts = rng.normal(size=(n, 2))
            D = get_metric(None).pairwise(pts, pts)
            w = rng.integers(1, 9, n)
            k = int(rng.integers(1, 5))
            z = int(rng.integers(0, 6))
            g = float(rng.choice(np.unique(D)[1:])) if n > 1 else 0.5
            ok_a, c_a, u_a = _greedy_disks(D, w, k, z, g)
            ok_b, c_b, u_b = greedy_disks_reference(D, w, k, z, g)
            assert ok_a == ok_b and c_a == c_b
            np.testing.assert_array_equal(u_a, u_b)

    def test_geometric_decision_bit_identical(self):
        rng = np.random.default_rng(8)
        for _ in range(8):
            P = _random_instance(rng, n_max=90)
            met = get_metric(str(rng.choice(METRICS)))
            k = int(rng.integers(1, 5))
            z = int(rng.integers(0, 6))
            g = float(rng.choice([0.05, 0.5, 2.0]))
            ok_a, c_a, u_a = _geometric_decision(P, met, k, z, g)
            ok_b, c_b, u_b = geometric_decision_reference(P, met, k, z, g)
            assert ok_a == ok_b and c_a == c_b
            np.testing.assert_array_equal(u_a, u_b)


class TestFractionalWeightFeasibility:
    """Satellite bugfix: ``int(weights[uncovered].sum()) <= z`` truncated
    fractional weights, so uncovered weight ``z + 0.9`` passed as
    feasible.  The float-safe comparison must reject it."""

    def _fractional_setup(self):
        # one tight cluster at 0 and two far points of weight 0.95 each:
        # any single ball of radius `g` covers the cluster only, leaving
        # uncovered weight 1.9 > z = 1 (but int(1.9) = 1 <= 1).
        pts = np.array([[0.0], [0.01], [100.0], [200.0]])
        w = np.array([1.0, 1.0, 0.95, 0.95])
        return pts, w

    def test_greedy_disks_rejects_truncated_weight(self):
        pts, w = self._fractional_setup()
        D = get_metric(None).pairwise(pts, pts)
        ok_new, _, _ = _greedy_disks(D, w, k=1, z=1, guess=0.05)
        assert not ok_new
        # the frozen reference documents the historical truncation bug
        ok_old, _, _ = greedy_disks_reference(D, w, k=1, z=1, guess=0.05)
        assert ok_old

    def test_geometric_decision_rejects_truncated_weight(self):
        pts, w = self._fractional_setup()

        class _FloatWeighted:
            """Minimal stand-in: WeightedPointSet enforces integer
            weights, but the decision procedures accept any weights."""

            def __init__(self, points, weights):
                self.points = points
                self.weights = weights

        P = _FloatWeighted(pts, w)
        met = get_metric(None)
        ok_new, _, _ = _geometric_decision(P, met, k=1, z=1, guess=0.05)
        assert not ok_new
        ok_old, _, _ = geometric_decision_reference(P, met, k=1, z=1, guess=0.05)
        assert ok_old

    def test_fractional_weights_stay_in_float64_gains(self):
        # regression: the float32 gain fast path must not engage for
        # fractional weights (rounding them moved center picks); with the
        # integer-dtype gate the picks match the reference again
        rng = np.random.default_rng(84)
        pts = rng.normal(size=(30, 2))
        D = get_metric(None).pairwise(pts, pts)
        w = rng.random(30) * 0.2 + 0.05
        g = float(np.median(D))
        ok_a, c_a, u_a = _greedy_disks(D, w, 3, 1, g)
        ok_b, c_b, u_b = greedy_disks_reference(D, w, 3, 1, g)
        assert c_a == c_b
        np.testing.assert_array_equal(u_a, u_b)

    def test_integer_weights_unchanged(self):
        # on integer weights the tolerance comparison equals the old test
        rng = np.random.default_rng(11)
        for _ in range(5):
            n = int(rng.integers(4, 50))
            pts = rng.normal(size=(n, 2))
            D = get_metric(None).pairwise(pts, pts)
            w = rng.integers(1, 9, n)
            g = float(np.median(D))
            assert (
                _greedy_disks(D, w, 2, 3, g)[0]
                == greedy_disks_reference(D, w, 2, 3, g)[0]
            )


class TestAbsorbParity:
    @pytest.mark.parametrize("metric", METRICS)
    def test_grid_path_bit_identical(self, metric):
        # n >= 192 and dim <= 4 engages the grid fast path
        rng = np.random.default_rng(21)
        n = 600
        P = WeightedPointSet(rng.random((n, 2)) * 10, rng.integers(1, 5, n))
        met = get_metric(metric)
        for delta in (0.05, 0.4, 2.5):
            c_a, as_a = _greedy_absorb(P, delta, met)
            c_b, as_b = greedy_absorb_reference(P, delta, met)
            np.testing.assert_array_equal(c_a.points, c_b.points)
            np.testing.assert_array_equal(c_a.weights, c_b.weights)
            np.testing.assert_array_equal(as_a, as_b)

    def test_fallback_path_bit_identical(self):
        # high dimension disables the grid; the compressed fallback must
        # still match the reference
        rng = np.random.default_rng(22)
        n = 300
        P = WeightedPointSet(rng.normal(size=(n, 6)), rng.integers(1, 5, n))
        met = get_metric(None)
        for delta in (0.0, 0.8, 3.0):
            c_a, as_a = _greedy_absorb(P, delta, met)
            c_b, as_b = greedy_absorb_reference(P, delta, met)
            np.testing.assert_array_equal(c_a.points, c_b.points)
            np.testing.assert_array_equal(c_a.weights, c_b.weights)
            np.testing.assert_array_equal(as_a, as_b)

    def test_custom_order_bit_identical(self):
        rng = np.random.default_rng(23)
        n = 250
        P = WeightedPointSet(rng.random((n, 2)), rng.integers(1, 4, n))
        met = get_metric(None)
        order = rng.permutation(n)
        c_a, as_a = _greedy_absorb(P, 0.1, met, order)
        c_b, as_b = greedy_absorb_reference(P, 0.1, met, order)
        np.testing.assert_array_equal(c_a.points, c_b.points)
        np.testing.assert_array_equal(c_a.weights, c_b.weights)
        np.testing.assert_array_equal(as_a, as_b)

    def test_precomputed_metric_named_euclidean_skips_grid(self):
        # regression: the grid gate must be isinstance-based, not
        # name-based — a PrecomputedMetric labeled "euclidean" holds
        # element *ids* as coordinates, which must never be bucketed
        rng = np.random.default_rng(25)
        n = 300  # above the grid threshold
        raw = rng.random((n, 2)) * 4
        D = get_metric(None).pairwise(raw, raw)
        met = PrecomputedMetric(D, name="euclidean", doubling=2)
        ids = np.arange(n, dtype=float).reshape(-1, 1)
        P = WeightedPointSet(ids, rng.integers(1, 4, n))
        c_a, as_a = _greedy_absorb(P, 0.5, met)
        c_b, as_b = greedy_absorb_reference(P, 0.5, met)
        np.testing.assert_array_equal(c_a.points, c_b.points)
        np.testing.assert_array_equal(c_a.weights, c_b.weights)
        np.testing.assert_array_equal(as_a, as_b)
        # sanity: the absorption did merge across non-adjacent ids
        assert len(c_a) < n

    def test_mbc_construction_end_to_end_parity(self):
        rng = np.random.default_rng(24)
        n = 400
        P = WeightedPointSet(rng.random((n, 2)) * 5, rng.integers(1, 5, n))
        met = get_metric(None)
        mbc = mbc_construction(P, 3, 6, 0.5, met)
        ref_radius = charikar_greedy_reference(P, 3, 6, met).radius
        assert mbc.greedy_radius == ref_radius
        ref_cs, ref_assign = greedy_absorb_reference(
            P, 0.5 * ref_radius / 3.0, met
        )
        np.testing.assert_array_equal(mbc.coreset.points, ref_cs.points)
        np.testing.assert_array_equal(mbc.coreset.weights, ref_cs.weights)
        np.testing.assert_array_equal(mbc.assignment, ref_assign)
