"""Smoke tests that the example scripts stay runnable.

The three fastest examples run end-to-end in a subprocess; the heavier
streaming/dynamic ones are compile-checked (they run in the benchmark
suite's time budget, not the unit suite's).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = ["quickstart.py", "graph_road_network.py"]
HEAVY = [
    "mpc_sensor_fleet.py",
    "streaming_intrusion.py",
    "dynamic_inventory.py",
    "sliding_window_traffic.py",
    "composable_pipeline.py",
]


@pytest.mark.parametrize("script", FAST)
def test_fast_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


@pytest.mark.parametrize("script", FAST + HEAVY)
def test_example_compiles(script):
    py_compile.compile(str(EXAMPLES / script), doraise=True)


def test_all_examples_listed():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST + HEAVY)
