"""Unit tests for repro.core.greedy (Gonzalez + Charikar Greedy)."""

import numpy as np
import pytest

from repro.core import (
    WeightedPointSet,
    brute_force_opt,
    charikar_greedy,
    coverage_radius,
    gonzalez,
)


class TestGonzalez:
    def test_covers_everything(self, small_set):
        res = gonzalez(small_set, 3)
        r = coverage_radius(small_set, small_set.points[res.centers_idx], 0)
        assert r <= res.radius + 1e-9

    def test_two_approx(self, tiny_set):
        res = gonzalez(tiny_set, 2)
        opt = brute_force_opt(tiny_set, 2, 0).radius
        # Gonzalez is 2-approx vs continuous opt; vs discrete opt still <= 2x
        assert res.radius <= 2.0 * opt + 1e-9

    def test_k_geq_n_zero_radius(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [5.0]]))
        assert gonzalez(P, 5).radius == 0.0

    def test_empty(self):
        res = gonzalez(WeightedPointSet.empty(2), 3)
        assert res.radius == 0.0 and len(res.centers_idx) == 0

    def test_deterministic_given_first(self, small_set):
        a = gonzalez(small_set, 3, first=0)
        b = gonzalez(small_set, 3, first=0)
        assert a.centers_idx.tolist() == b.centers_idx.tolist()


class TestCharikarCertificate:
    """radius in [opt_discrete/?, 3*opt]: check both sides vs brute force."""

    @pytest.mark.parametrize("k,z", [(1, 0), (1, 2), (2, 0), (2, 2), (3, 1)])
    def test_three_approx_vs_brute(self, rng, k, z):
        P = WeightedPointSet.from_points(rng.uniform(0, 10, size=(11, 2)))
        opt = brute_force_opt(P, k, z).radius
        res = charikar_greedy(P, k, z)
        assert res.radius <= 3.0 * opt + 1e-9
        # feasibility: radius achieved by k balls leaving <= z weight
        assert opt <= res.radius + 1e-9

    def test_uncovered_weight_bounded(self, small_set):
        res = charikar_greedy(small_set, 2, 4)
        assert int(small_set.weights[res.uncovered].sum()) <= 4

    def test_weighted_instance(self):
        # heavy point cannot be outliered with z=1
        P = WeightedPointSet(np.array([[0.0], [1.0], [100.0]]), [1, 1, 2])
        res = charikar_greedy(P, 1, 1)
        assert res.radius >= 99.0  # must cover the heavy far point

    def test_weighted_outlier_allowed(self):
        P = WeightedPointSet(np.array([[0.0], [1.0], [100.0]]), [1, 1, 2])
        # z=2 allows BOTH unit points as outliers: center on the heavy
        # point, radius 0 (the true optimum)
        res = charikar_greedy(P, 1, 2)
        assert res.radius == pytest.approx(0.0)
        # z=1 keeps one unit point: radius 1 covering {0,1} is optimal...
        # but the heavy point must be covered too, so radius >= 99
        res1 = charikar_greedy(P, 1, 1)
        assert res1.radius >= 99.0

    def test_outliers_ignored_when_z_large(self, small_planar):
        P = small_planar.point_set()
        res = charikar_greedy(P, 2, 4)
        # with the planted z respected, radius is at cluster scale
        inl = P.subset(~small_planar.outlier_mask)
        spread = np.linalg.norm(inl.points.std(axis=0))
        assert res.radius < 20 * spread

    def test_zero_k_raises(self, tiny_set):
        with pytest.raises(ValueError):
            charikar_greedy(tiny_set, 0, 0)

    def test_total_weight_below_z(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [9.0]]))
        res = charikar_greedy(P, 1, 5)
        assert res.radius == 0.0

    def test_k_geq_n(self):
        P = WeightedPointSet.from_points(np.array([[0.0], [9.0]]))
        assert charikar_greedy(P, 2, 0).radius == 0.0

    def test_coincident_points(self):
        P = WeightedPointSet.from_points(np.zeros((5, 2)))
        assert charikar_greedy(P, 1, 0).radius == 0.0

    def test_empty(self):
        assert charikar_greedy(WeightedPointSet.empty(2), 2, 1).radius == 0.0


class TestCharikarGeometricMode:
    def test_large_input_uses_geometric(self, rng):
        pts = np.concatenate([
            rng.normal(0, 0.5, (40, 2)), rng.normal(20, 0.5, (40, 2)),
            rng.uniform(100, 200, (4, 2)),
        ])
        P = WeightedPointSet.from_points(pts)
        exact = charikar_greedy(P, 2, 4)
        geo = charikar_greedy(P, 2, 4, pairwise_limit=10, tol=0.05)
        # geometric mode within (1+tol) of exact-candidate mode and feasible
        assert geo.radius <= 3.05 * exact.radius + 1e-9
        assert coverage_radius(P, P.points[geo.centers_idx], 4) <= geo.radius + 1e-9

    def test_geometric_certificate_vs_brute(self, rng):
        P = WeightedPointSet.from_points(rng.uniform(0, 10, size=(12, 2)))
        opt = brute_force_opt(P, 2, 1).radius
        res = charikar_greedy(P, 2, 1, pairwise_limit=4)
        assert opt <= res.radius + 1e-9 <= 3.0 * 1.05 * opt + 1e-6

    def test_geometric_coincident(self):
        P = WeightedPointSet.from_points(np.zeros((30, 2)))
        res = charikar_greedy(P, 1, 0, pairwise_limit=5)
        assert res.radius == 0.0


class TestMetricSupport:
    @pytest.mark.parametrize("metric", ["euclidean", "linf", "l1"])
    def test_all_metrics(self, rng, metric):
        P = WeightedPointSet.from_points(rng.uniform(0, 10, size=(12, 2)))
        opt = brute_force_opt(P, 2, 1, metric).radius
        res = charikar_greedy(P, 2, 1, metric)
        assert opt <= res.radius + 1e-9 <= 3 * opt + 1e-6
