"""Fully dynamic example: warehouse slotting under churn.

Items occupy integer grid positions in a warehouse ([Delta]^2); stock
arrives and ships out all day (inserts AND deletes).  Algorithm 5
maintains linear sketches over a grid hierarchy, so at any moment we can
recover a relaxed (eps,k,z)-coreset of the *live* inventory and re-solve
k-center with outliers — the paper's fully dynamic (3+eps)-approximation
with update time independent of the inventory size.

Run:  python examples/dynamic_inventory.py
"""

import numpy as np

from repro import WeightedPointSet
from repro.core import charikar_greedy
from repro.streaming import DynamicKCenter
from repro.workloads import integer_workload

rng = np.random.default_rng(23)
delta, d, k, z = 512, 2, 3, 8

wl = integer_workload(400, k, z, delta, d, rng=rng)
algo = DynamicKCenter(k, z, eps=1.0, delta_universe=delta, dim=d,
                      rng=np.random.default_rng(99))

print(f"warehouse grid [1..{delta}]^2, k={k} staging areas, z={z} stray items")

# morning: stock arrives
for p in wl.points:
    algo.insert(p)
live = [tuple(p) for p in wl.points]
print(f"after {len(live)} arrivals: radius {algo.radius():.2f} "
      f"(sketch cells {algo.core.storage_cells})")

# afternoon: half the stock ships out (deletes), new stock lands
ship_out = wl.points[:200]
for p in ship_out:
    algo.delete(p)
restock = integer_workload(150, k, 2, delta, d, rng=rng)
for p in restock.points:
    algo.insert(p)
print(f"after 200 deletions + 150 arrivals: radius {algo.radius():.2f}")

# ground truth comparison on the live multiset
live_pts = np.concatenate([wl.points[200:], restock.points]).astype(float)
P = WeightedPointSet.from_points(live_pts)
r_true = charikar_greedy(P, k, z).radius
print(f"offline greedy on live inventory: {r_true:.2f} "
      f"(dynamic estimate within a small constant factor)")
cs = algo.core.coreset()
print(f"recovered coreset: {len(cs)} cells, total weight {cs.total_weight} "
      f"== live items {len(live_pts)}: {cs.total_weight == len(live_pts)}")
