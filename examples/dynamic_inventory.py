"""Fully dynamic example: warehouse slotting under churn.

Items occupy integer grid positions in a warehouse ([Delta]^2); stock
arrives and ships out all day (inserts AND deletes).  The 'dynamic'
backend (Algorithm 5) maintains linear sketches over a grid hierarchy,
so at any moment the session can recover a relaxed (eps,k,z)-coreset of
the *live* inventory and re-solve k-center with outliers — the paper's
fully dynamic (3+eps)-approximation with update time independent of the
inventory size.

Run:  python examples/dynamic_inventory.py
"""

import numpy as np

from repro.api import KCenterSession, ProblemSpec
from repro.workloads import integer_workload

rng = np.random.default_rng(23)
delta = 512
spec = ProblemSpec(k=3, z=8, eps=1.0, dim=2, seed=99)

wl = integer_workload(400, spec.k, spec.z, delta, spec.dim, rng=rng)
session = KCenterSession.from_spec(spec, backend="dynamic",
                                   delta_universe=delta)

print(f"warehouse grid [1..{delta}]^2, k={spec.k} staging areas, "
      f"z={spec.z} stray items")

# morning: stock arrives (batched sketch updates — one cell-id pass/grid)
session.extend(wl.points)
sol = session.solve()
print(f"after {session.updates_seen} arrivals: radius {sol.radius:.2f} "
      f"(sketch cells {sol.stats['storage_cells']})")

# afternoon: half the stock ships out (deletes), new stock lands
for p in wl.points[:200]:
    session.delete(p)
restock = integer_workload(150, spec.k, 2, delta, spec.dim, rng=rng)
session.extend(restock.points)
print(f"after 200 deletions + 150 arrivals: radius {session.solve().radius:.2f}")

# ground truth comparison on the live multiset
live_pts = np.concatenate([wl.points[200:], restock.points]).astype(float)
truth = KCenterSession.from_spec(spec, backend="offline")
truth.extend(live_pts)
print(f"offline greedy on live inventory: {truth.solve().radius:.2f} "
      f"(dynamic estimate within a small constant factor)")
cs = session.coreset()
print(f"recovered coreset: {len(cs)} cells, total weight {cs.total_weight} "
      f"== live items {len(live_pts)}: {cs.total_weight == len(live_pts)}")
