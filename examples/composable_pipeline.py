"""Advanced example: a custom merge-reduce backend behind the facade.

Demonstrates that `repro.api` is extensible, not a closed enum: a custom
three-tier telemetry pipeline (12 edge sites -> 4 regions -> global) is
implemented with `CoresetBuilder` (merge/reduce with automatic error
accounting, Lemmas 4+5), registered via `register_backend`, and then
driven through the exact same `KCenterSession` calls as every built-in —
including the enriched `solve()` provenance.

Also shown: `dyw_greedy` (the Ding-Yu-Wang bi-criteria solver, the
paper's reference [21]) on the facade's coreset, and `extract_clusters`
for per-point labels and an outlier report.

Run:  python examples/composable_pipeline.py
"""

import numpy as np

from repro import WeightedPointSet
from repro.api import Guarantee, KCenterSession, ProblemSpec, register_backend
from repro.core import CoresetBuilder, charikar_greedy, dyw_greedy, extract_clusters
from repro.workloads import clustered_with_outliers

rng = np.random.default_rng(17)
spec = ProblemSpec(k=4, z=30, eps=0.25, dim=3, seed=0)


@register_backend(
    "telemetry-tree",
    model="offline",
    algorithm="custom 3-tier merge-reduce (Lemmas 4+5)",
    guarantee="composed eps tracked by CoresetBuilder",
)
class TelemetryTreeBackend:
    """Edge/region/global aggregation tree as a facade backend."""

    def __init__(self, spec, num_sites: int = 12, fanout: int = 3):
        self.spec = spec
        self.num_sites, self.fanout = num_sites, fanout
        self._chunks = []
        self.root = None

    def insert(self, point):
        self.extend(np.asarray(point, dtype=float).reshape(1, -1))

    def delete(self, point):
        raise NotImplementedError("telemetry tree is insertion-only")

    def extend(self, points):
        self._chunks.append(np.atleast_2d(np.asarray(points, dtype=float)))
        self.root = None

    def coreset(self):
        P = np.concatenate(self._chunks, axis=0)
        wps = WeightedPointSet.from_points(P)
        shards = [wps.subset(np.arange(i, len(wps), self.num_sites))
                  for i in range(self.num_sites)]
        s, k, z, eps = self.spec, self.spec.k, self.spec.z, self.spec.eps
        # tier 1: every edge site compresses its own shard
        edges = [CoresetBuilder.from_points(sh, k, z, s.resolved_metric)
                 .reduce(eps, z_budget=z) for sh in shards]
        # tier 2: regions merge `fanout` edge sites and re-compress
        regions = [CoresetBuilder.merge_all(edges[i:i + self.fanout]).reduce(eps)
                   for i in range(0, self.num_sites, self.fanout)]
        # tier 3: global merge + final compression
        self.root = CoresetBuilder.merge_all(regions).reduce(eps)
        return self.root.coreset

    def guarantee(self):
        eps = self.root.eps if self.root is not None else float("nan")
        return Guarantee(eps=eps, model="offline",
                         note="3-tier merge-reduce, composed by Lemma 5")

    def stats(self):
        return {"tiers": 3, "sites": self.num_sites,
                "composed_eps": self.root.eps if self.root else None}


# -- drive the custom backend exactly like a built-in ------------------------
wl = clustered_with_outliers(9000, spec.k, spec.z, d=spec.dim, rng=rng)
P = wl.point_set()
session = KCenterSession.from_spec(spec, backend="telemetry-tree")
session.extend(P.points)

sol = session.solve()
root = session.backend.root
print(f"telemetry tree: {len(P)} rows -> {sol.coreset_size} "
      f"(composed guarantee eps = {sol.eps_guarantee:.4f})")
assert root.total_weight == len(P)

# -- alternative solvers on the same facade coreset ---------------------------
cs = session.coreset()
greedy = charikar_greedy(cs, spec.k, spec.z, spec.resolved_metric)
dyw = dyw_greedy(cs, spec.k, spec.z, delta=0.2, rng=rng, trials=12)
print(f"\nsolvers on the {len(cs)}-row coreset:")
print(f"  Charikar 3-approx : radius {greedy.radius:.3f}")
print(f"  Ding-Yu-Wang      : radius {dyw.radius:.3f} "
      f"(outlier weight {dyw.outlier_weight} <= (1+0.2)z = {int(1.2 * spec.z)})")

# -- label the original points ------------------------------------------------
assignment = extract_clusters(P, sol.centers, spec.z)
sizes = [len(assignment.cluster_indices(j)) for j in range(len(sol.centers))]
print(f"\ncluster sizes: {sizes}")
print(f"outliers declared: {int(assignment.outlier_mask.sum())} "
      f"(weight {assignment.outlier_weight} <= z = {spec.z})")
print(f"planted-outlier recall: "
      f"{(assignment.outlier_mask & wl.outlier_mask).sum()}/{wl.outlier_mask.sum()}")

full = KCenterSession.from_spec(spec, backend="offline")
full.extend(P.points)
r_full = full.solve().radius
print(f"\nend to end: coreset radius {sol.radius:.3f} vs offline "
      f"radius {r_full:.3f} (ratio {sol.radius / r_full:.3f}, "
      f"guarantee 1 +- {sol.eps_guarantee:.3f})")
