"""Advanced example: a custom merge-reduce coreset pipeline.

Demonstrates three extensions on top of the paper's core algorithms:

1. `CoresetBuilder` — assemble your own aggregation tree (here: an
   edge/region/global three-tier telemetry hierarchy) while the library
   tracks the composed (eps,k,z) guarantee through Lemmas 4 and 5;
2. `dyw_greedy` — the bi-criteria randomized greedy of Ding-Yu-Wang
   (the paper's reference [21]) as the final solver on the coreset;
3. `extract_clusters` — turning the solution into per-point labels and
   an outlier report.

Run:  python examples/composable_pipeline.py
"""

import numpy as np

from repro import WeightedPointSet
from repro.core import CoresetBuilder, charikar_greedy, dyw_greedy, extract_clusters
from repro.workloads import clustered_with_outliers

rng = np.random.default_rng(17)
k, z, eps = 4, 30, 0.25

# -- a three-tier telemetry topology: 12 edge sites, 4 regions ---------------
wl = clustered_with_outliers(9000, k, z, d=3, rng=rng)
P = wl.point_set()
edge_shards = [P.subset(np.arange(i, len(P), 12)) for i in range(12)]

# tier 1: every edge site compresses its own shard
edges = [
    CoresetBuilder.from_points(shard, k, z).reduce(eps, z_budget=z)
    for shard in edge_shards
]
print(f"edge tier    : 12 sites, {sum(e.size for e in edges)} total rows "
      f"(from {len(P)}), per-site eps = {edges[0].eps}")

# tier 2: regions merge 3 edge sites each and re-compress
regions = [
    CoresetBuilder.merge_all(edges[i: i + 3]).reduce(eps)
    for i in range(0, 12, 3)
]
print(f"region tier  : 4 regions, {sum(r.size for r in regions)} rows, "
      f"eps = {regions[0].eps:.4f}")

# tier 3: global merge + final compression
root = CoresetBuilder.merge_all(regions).reduce(eps)
print(f"global tier  : {root.size} rows, composed guarantee eps = {root.eps:.4f}")
assert root.total_weight == P.total_weight

# -- solve on the root coreset ------------------------------------------------
greedy = charikar_greedy(root.coreset, k, z)
dyw = dyw_greedy(root.coreset, k, z, delta=0.2, rng=rng, trials=12)
print(f"\nsolvers on the {root.size}-row coreset:")
print(f"  Charikar 3-approx : radius {greedy.radius:.3f}")
print(f"  Ding-Yu-Wang      : radius {dyw.radius:.3f} "
      f"(outlier weight {dyw.outlier_weight} <= (1+0.2)z = {int(1.2 * z)})")

# -- label the original points ------------------------------------------------
centers = root.coreset.points[greedy.centers_idx]
assignment = extract_clusters(P, centers, z)
sizes = [len(assignment.cluster_indices(j)) for j in range(len(centers))]
print(f"\ncluster sizes: {sizes}")
print(f"outliers declared: {int(assignment.outlier_mask.sum())} "
      f"(weight {assignment.outlier_weight} <= z = {z})")
print(f"planted-outlier recall: "
      f"{(assignment.outlier_mask & wl.outlier_mask).sum()}/{wl.outlier_mask.sum()}")

r_full = charikar_greedy(P, k, z).radius
print(f"\nend to end: coreset radius {greedy.radius:.3f} vs full-data "
      f"radius {r_full:.3f} (ratio {greedy.radius / r_full:.3f}, "
      f"guarantee 1 +- {root.eps:.3f})")
