"""Streaming example: intrusion detection over a connection-feature stream.

Connection features (latency, payload entropy) arrive one at a time;
normal traffic forms a few drifting clusters while intrusions are isolated
outliers.  Algorithm 3 maintains an (eps,k,z)-coreset in O(k/eps^d + z)
space — optimal by the paper's §4 lower bound — from which the clustering
radius (and hence an anomaly threshold) can be recomputed at any time.

Run:  python examples/streaming_intrusion.py
"""

import numpy as np

from repro import WeightedPointSet
from repro.core import charikar_greedy
from repro.streaming import InsertionOnlyCoreset, paper_size_threshold
from repro.workloads import drifting_stream

rng = np.random.default_rng(11)
n, k, z, eps, d = 8000, 3, 40, 0.8, 2

stream = drifting_stream(n, k, z, d, drift=0.002, rng=rng)
print(f"stream: {n} connection records, k={k} traffic regimes, z={z} intrusions")
print(f"paper size threshold k(16/eps)^d + z = {paper_size_threshold(k, z, eps, d)}")

sketch = InsertionOnlyCoreset(k, z, eps, d)
checkpoints = [n // 8, n // 4, n // 2, n]
next_cp = 0
for t, p in enumerate(stream, 1):
    sketch.insert(p)
    if next_cp < len(checkpoints) and t == checkpoints[next_cp]:
        cs = sketch.coreset()
        r = charikar_greedy(cs, k, z).radius
        print(f"  t={t:5d}  stored={sketch.size:4d}  r-estimate={sketch.r:.4f}  "
              f"radius(coreset)={r:.3f}  doublings={sketch.doublings}")
        next_cp += 1

# -- compare against offline on the full stream ------------------------------
P = WeightedPointSet.from_points(stream)
r_full = charikar_greedy(P, k, z).radius
r_core = charikar_greedy(sketch.coreset(), k, z).radius
print(f"\nfinal: {sketch.size} stored vs {n} seen "
      f"({n / sketch.size:.0f}x compression)")
print(f"radius offline {r_full:.3f} vs via coreset {r_core:.3f} "
      f"(ratio {r_core / r_full:.3f})")

# anomaly report: coreset points of weight 1 far from heavy mass are the
# intrusion candidates
cs = sketch.coreset()
heavy = cs.points[cs.weights > 1]
light = cs.points[cs.weights == 1]
print(f"coreset: {len(heavy)} aggregated representatives, "
      f"{len(light)} singleton candidates (intrusion suspects)")
