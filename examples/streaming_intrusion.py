"""Streaming example: intrusion detection over a connection-feature stream.

Connection features (latency, payload entropy) arrive in batches; normal
traffic forms a few drifting clusters while intrusions are isolated
outliers.  The 'insertion-only' backend (Algorithm 3) maintains an
(eps,k,z)-coreset in O(k/eps^d + z) space — optimal by the paper's §4
lower bound — and the session's batched `extend` ingests each batch with
one metric-matrix evaluation instead of a per-point Python loop.

Run:  python examples/streaming_intrusion.py
"""

import numpy as np

from repro.api import KCenterSession, ProblemSpec
from repro.streaming import paper_size_threshold
from repro.workloads import drifting_stream

rng = np.random.default_rng(11)
n = 8000
spec = ProblemSpec(k=3, z=40, eps=0.8, dim=2, seed=0)

stream = drifting_stream(n, spec.k, spec.z, spec.dim, drift=0.002, rng=rng)
print(f"stream: {n} connection records, k={spec.k} traffic regimes, "
      f"z={spec.z} intrusions")
print(f"paper size threshold k(16/eps)^d + z = "
      f"{paper_size_threshold(spec.k, spec.z, spec.eps, spec.dim)}")

session = KCenterSession.from_spec(spec, backend="insertion-only")
checkpoints = [n // 8, n // 4, n // 2, n]
prev = 0
for cp in checkpoints:
    session.extend(stream[prev:cp])         # batched ingest per checkpoint
    prev = cp
    sol = session.solve()
    st = sol.stats
    print(f"  t={cp:5d}  stored={st['stored']:4d}  r-estimate={st['r']:.4f}  "
          f"radius(coreset)={sol.radius:.3f}  doublings={st['doublings']}")

# -- compare against offline on the full stream ------------------------------
offline = KCenterSession.from_spec(spec, backend="offline")
offline.extend(stream)
r_full = offline.solve().radius
final = session.solve()
print(f"\nfinal: {final.coreset_size} stored vs {final.updates} seen "
      f"({final.updates / final.coreset_size:.0f}x compression, "
      f"ingest wall time {session.wall_time * 1e3:.0f} ms)")
print(f"radius offline {r_full:.3f} vs via coreset {final.radius:.3f} "
      f"(ratio {final.radius / r_full:.3f})")

# anomaly report: coreset points of weight 1 far from heavy mass are the
# intrusion candidates
cs = session.coreset()
heavy = cs.points[cs.weights > 1]
light = cs.points[cs.weights == 1]
print(f"coreset: {len(heavy)} aggregated representatives, "
      f"{len(light)} singleton candidates (intrusion suspects)")
