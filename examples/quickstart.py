"""Quickstart: coresets for k-center with outliers in five minutes.

Reproduces the Figure 1 scenario through the unified `repro.api` facade:
a planar point set covered by k=2 balls with z=5 outliers, compressed to
a mini-ball covering whose weighted representatives preserve the
clustering radius up to (1 +- eps).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import available_backends
from repro.api import KCenterSession, ProblemSpec
from repro.core import brute_force_opt, verify_mbc

rng = np.random.default_rng(42)

# -- data: two clusters plus five anomalies (Figure 1) ----------------------
cluster_a = rng.normal((0.0, 0.0), 0.4, size=(220, 2))
cluster_b = rng.normal((6.0, 1.5), 0.6, size=(180, 2))
anomalies = rng.uniform(15.0, 30.0, size=(5, 2))
points = np.concatenate([cluster_a, cluster_b, anomalies])

# -- one spec drives every model in the library ------------------------------
spec = ProblemSpec(k=2, z=5, eps=0.3, dim=2, seed=0)
print(f"spec: {spec}")
print(f"registered backends: {available_backends()}")

# -- the offline backend runs Algorithm 1 (MBCConstruction) ------------------
session = KCenterSession.from_spec(spec, backend="offline")
session.extend(points)                      # batched ingest: one call
coreset = session.coreset()
print(f"mini-ball covering: {len(coreset)} weighted points "
      f"(compression {len(points) / len(coreset):.1f}x)")
assert coreset.total_weight == len(points), "weight preservation"

# -- solve on the coreset instead of the full data ---------------------------
sol = session.solve()                       # enriched, provenance-carrying
full = KCenterSession.from_spec(spec, backend="offline")
full.extend(points)
r_full = full.solve().radius                # same recipe on the same data
print(f"radius via coreset : {sol.radius:.3f} "
      f"(backend={sol.backend}, eps_guarantee={sol.eps_guarantee}, "
      f"coreset_size={sol.coreset_size}, updates={sol.updates})")
print(f"approximation      : {sol.approx_factor} * opt  "
      f"(wall time {sol.wall_time * 1e3:.1f} ms)")

# -- certify the coreset (Definition 1 via Lemma 3) --------------------------
P = session.backend.point_set()
check = verify_mbc(P, session.backend.last_mbc, spec.k, spec.z, spec.eps)
print(f"coreset verification: {'OK' if check.ok else 'FAILED'}")
print(f"  {check.details}")

# -- tiny instances admit exact optima ----------------------------------------
small_idx = rng.choice(len(points), 12, replace=False)
small = KCenterSession.from_spec(spec.replace(z=2), backend="offline")
small.extend(points[small_idx])
exact = brute_force_opt(small.backend.point_set(), spec.k, 2)
print(f"exact optimum on a 12-point subsample: {exact.radius:.3f}")
