"""Quickstart: coresets for k-center with outliers in five minutes.

Reproduces the Figure 1 scenario: a planar point set covered by k=2 balls
with z=5 outliers, compressed to a mini-ball covering whose weighted
representatives preserve the clustering radius up to (1 +- eps).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import WeightedPointSet, charikar_greedy, mbc_construction, solve_via_coreset
from repro.core import brute_force_opt, verify_mbc

rng = np.random.default_rng(42)

# -- data: two clusters plus five anomalies (Figure 1) ----------------------
cluster_a = rng.normal((0.0, 0.0), 0.4, size=(220, 2))
cluster_b = rng.normal((6.0, 1.5), 0.6, size=(180, 2))
anomalies = rng.uniform(15.0, 30.0, size=(5, 2))
points = np.concatenate([cluster_a, cluster_b, anomalies])
P = WeightedPointSet.from_points(points)
k, z, eps = 2, 5, 0.3

print(f"input: {len(P)} points, k={k}, z={z}, eps={eps}")

# -- the paper's Greedy subroutine (Charikar et al. 3-approximation) --------
greedy = charikar_greedy(P, k, z)
print(f"Greedy(P,k,z): radius {greedy.radius:.3f} "
      f"(certified within [opt, 3*opt]; opt >= {greedy.radius / 3:.3f})")

# -- Algorithm 1: MBCConstruction -------------------------------------------
mbc = mbc_construction(P, k, z, eps)
print(f"mini-ball covering: {mbc.size} weighted points "
      f"(compression {len(P) / mbc.size:.1f}x), "
      f"mini-ball radius {mbc.mini_ball_radius:.4f}")
assert mbc.coreset.total_weight == P.total_weight, "weight preservation"

# -- solve on the coreset instead of the full data ---------------------------
sol_full = charikar_greedy(P, k, z)
sol_core = solve_via_coreset(mbc.coreset, k, z)
print(f"radius solving on full data : {sol_full.radius:.3f}")
print(f"radius solving on coreset   : {sol_core.radius:.3f} "
      f"(ratio {sol_core.radius / sol_full.radius:.3f})")

# -- certify the coreset (Definition 1 via Lemma 3) --------------------------
check = verify_mbc(P, mbc, k, z, eps)
print(f"coreset verification: {'OK' if check.ok else 'FAILED'}")
print(f"  {check.details}")

# -- tiny instances admit exact optima ----------------------------------------
small = WeightedPointSet.from_points(points[rng.choice(len(points), 12, replace=False)])
exact = brute_force_opt(small, k, 2)
print(f"exact optimum on a 12-point subsample: {exact.radius:.3f}")
