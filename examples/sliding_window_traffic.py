"""Sliding-window example: road-traffic monitoring over the last W probes.

GPS probe positions stream in; operations only care about the last W
probes (older traffic is stale).  The DBMZ sliding-window structure keeps
per-radius-guess covers with z+1 recency buffers — O((kz/eps^d) log sigma)
space, which §6 of the paper proves optimal — and answers k-center with
outliers on the current window at any time.

Run:  python examples/sliding_window_traffic.py
"""

import numpy as np

from repro import WeightedPointSet
from repro.core import charikar_greedy
from repro.streaming import SlidingWindowCoreset
from repro.workloads import drifting_stream

rng = np.random.default_rng(31)
n, window, k, z, eps, d = 5000, 500, 2, 6, 0.5, 2

stream = drifting_stream(n, k, 60, d, drift=0.01, rng=rng)
sw = SlidingWindowCoreset(k, z, eps, d, window, r_min=0.05, r_max=300.0)

print(f"stream: {n} probes, window W={window}, k={k}, z={z}")
print(f"radius-guess ladder: {sw.num_guesses} rungs (the log sigma factor)")

for t, p in enumerate(stream, 1):
    sw.insert(p)
    if t % 1000 == 0:
        r_sw = sw.radius()
        wpts = WeightedPointSet.from_points(stream[max(0, t - window):t])
        r_off = charikar_greedy(wpts, k, z).radius
        print(f"  t={t:5d}  stored={sw.stored_items:5d}  "
              f"window-radius {r_sw:7.3f}  offline {r_off:7.3f}  "
              f"ratio {r_sw / r_off if r_off else float('nan'):.3f}")

print(f"\nfinal storage: {sw.stored_items} items for a window of {window} "
      f"points across {sw.num_guesses} guesses")
print("storage is independent of the stream length n — only W-recent "
      "content is retained, per-cell capped at z+1 timestamps")
