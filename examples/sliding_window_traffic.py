"""Sliding-window example: road-traffic monitoring over the last W probes.

GPS probe positions stream in; operations only care about the last W
probes (older traffic is stale).  The 'sliding-window' backend (the DBMZ
structure) keeps per-radius-guess covers with z+1 recency buffers —
O((kz/eps^d) log sigma) space, which §6 of the paper proves optimal —
and answers k-center with outliers on the current window at any time.

Run:  python examples/sliding_window_traffic.py
"""

import numpy as np

from repro.api import KCenterSession, ProblemSpec
from repro.workloads import drifting_stream

rng = np.random.default_rng(31)
n, window = 5000, 500
spec = ProblemSpec(k=2, z=6, eps=0.5, dim=2, seed=0)

stream = drifting_stream(n, spec.k, 60, spec.dim, drift=0.01, rng=rng)
session = KCenterSession.from_spec(
    spec, backend="sliding-window", window=window, r_min=0.05, r_max=300.0
)

print(f"stream: {n} probes, window W={window}, k={spec.k}, z={spec.z}")
print(f"radius-guess ladder: {session.stats()['guesses']} rungs "
      f"(the log sigma factor)")

offline = ProblemSpec(k=spec.k, z=spec.z, eps=spec.eps, dim=spec.dim)
for t in range(1000, n + 1, 1000):
    session.extend(stream[t - 1000:t])      # batched ingest per block
    sol = session.solve()
    ref = KCenterSession.from_spec(offline, backend="offline")
    ref.extend(stream[max(0, t - window):t])
    r_off = ref.solve().radius
    print(f"  t={t:5d}  stored={sol.stats['stored']:5d}  "
          f"window-radius {sol.radius:7.3f}  offline {r_off:7.3f}  "
          f"ratio {sol.radius / r_off if r_off else float('nan'):.3f}")

final = session.stats()
print(f"\nfinal storage: {final['stored']} items for a window of {window} "
      f"points across {final['guesses']} guesses")
print("storage is independent of the stream length n — only W-recent "
      "content is retained, per-cell capped at z+1 timestamps")
