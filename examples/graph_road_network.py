"""General-metric example: depot placement on a road network.

The paper's algorithms work in any metric space of bounded doubling
dimension — not just R^d.  Here the space is the shortest-path metric of
a (perturbed) grid road network: place k service depots so that all but
z dead-end/blocked addresses are within a minimal drive radius.  The
facade carries the metric inside the ProblemSpec, so the same session
API drives a graph metric exactly like a Euclidean one.

Run:  python examples/graph_road_network.py
"""

import numpy as np

from repro.api import KCenterSession, ProblemSpec
from repro.core import extract_clusters
from repro.workloads import (
    estimate_doubling_dimension,
    graph_clustered_workload,
    grid_graph_metric,
)

rng = np.random.default_rng(5)

# -- a 12x12 road grid with perturbed travel times ---------------------------
metric = grid_graph_metric(12, 12, perturb=0.3, rng=rng)
print(f"road network: {metric.n_elements} intersections, "
      f"empirical doubling dimension "
      f"{estimate_doubling_dimension(metric, trials=24, rng=rng):.2f}")

# -- addresses: 3 dense neighbourhoods + 5 remote addresses -------------------
P, outlier_mask, hubs = graph_clustered_workload(
    metric, k=3, z=5, cluster_radius=4.5, rng=rng
)
spec = ProblemSpec(k=3, z=5, eps=1.0, metric=metric, dim=1)
print(f"addresses: {len(P)} ({int(outlier_mask.sum())} remote)")

# -- compress to a coreset in the graph metric --------------------------------
session = KCenterSession.from_spec(spec, backend="offline")
session.extend(P.points)
coreset = session.coreset()
print(f"coreset: {len(coreset)} weighted addresses "
      f"(compression {len(P) / len(coreset):.1f}x)")

# -- place depots on the coreset ----------------------------------------------
sol = session.solve()
depots = sol.centers
full = KCenterSession.from_spec(spec.replace(eps=0.01), backend="offline")
full.extend(P.points)
print(f"drive radius via coreset : {sol.radius:.2f}")
print(f"drive radius via full set: {full.solve().radius:.2f}")

# -- who is served by which depot, and who is out of reach --------------------
assignment = extract_clusters(P, depots, spec.z, metric)
for j in range(len(depots)):
    members = assignment.cluster_indices(j)
    print(f"depot at intersection {int(depots[j][0])}: serves {len(members)} addresses")
unreached = np.flatnonzero(assignment.outlier_mask)
print(f"out-of-reach addresses: {[int(P.points[i][0]) for i in unreached]} "
      f"(planted remote: {int((assignment.outlier_mask & outlier_mask).sum())}"
      f"/{int(outlier_mask.sum())})")
