"""MPC example: clustering a distributed sensor fleet with faulty units.

Scenario from the paper's motivation (§1): telemetry from a fleet is
sharded across machines; most readings form k operational regimes, but a
batch of faulty sensors produced garbage — and, adversarially, the
entire faulty batch landed on ONE worker (e.g. one ingestion shard
handled the bad firmware rollout).  The 'mpc-two-round' backend
(Algorithm 2) handles this: its first round lets every machine guess its
local outlier count, so the faulty worker budgets ~z while healthy
workers budget 0.  The registry makes the baseline comparison one string
away: 'cpp-mpc-deterministic' must budget z on every machine.

The spec's ``executor``/``jobs`` knobs fan the per-machine work out over
a real worker pool (here: 4 threads — the distance kernels release the
GIL); results are bit-identical to a serial run.

Run:  python examples/mpc_sensor_fleet.py
"""

import numpy as np

from repro.api import KCenterSession, ProblemSpec
from repro.mpc import partition_adversarial_outliers
from repro.workloads import clustered_with_outliers

rng = np.random.default_rng(7)
n, m = 6000, 12
spec = ProblemSpec(k=4, z=120, eps=0.5, dim=3, seed=0,
                   executor="thread", jobs=4)

wl = clustered_with_outliers(n, spec.k, spec.z, d=spec.dim, rng=rng)
P = wl.point_set()
adversarial = lambda pts: partition_adversarial_outliers(  # noqa: E731
    pts, wl.outlier_mask, m, rng
)
print(f"fleet: {n} readings over {m} machines, k={spec.k} regimes, "
      f"z={spec.z} faulty")
print(f"execution: {spec.executor} pool, jobs={spec.jobs} "
      f"(bit-identical to serial)")
print(f"outliers per machine: "
      f"{[int(wl.outlier_mask.sum()) if i == 1 else 0 for i in range(m)][:6]} ...")

# -- Algorithm 2 through the facade ------------------------------------------
ours = KCenterSession.from_spec(spec, backend="mpc-two-round",
                                num_machines=m, partition=adversarial)
ours.extend(P.points)
sol = ours.solve()
res = ours.backend.last_result
print("\ndeterministic 2-round (Algorithm 2):")
print(f"  per-machine outlier budgets: {res.extras['outlier_budgets']}")
print(f"  sum of budgets {sum(res.extras['outlier_budgets'])} <= 2z = {2 * spec.z}")
print(f"  coreset size {sol.coreset_size}, coordinator peak "
      f"{res.stats.coordinator_peak} items,")
print(f"  worker peak {res.stats.worker_peak} items, rounds {res.stats.rounds}")

# -- baseline: CPP19 must budget z on EVERY machine ---------------------------
base = KCenterSession.from_spec(spec, backend="cpp-mpc-deterministic",
                                num_machines=m, partition=adversarial)
base.extend(P.points)
bsol = base.solve()
bres = base.backend.last_result
print("\nCPP19 deterministic 1-round baseline:")
print(f"  coreset size {bsol.coreset_size}, coordinator peak "
      f"{bres.stats.coordinator_peak} items")

# -- end-to-end quality --------------------------------------------------------
full = KCenterSession.from_spec(spec, backend="offline")
full.extend(P.points)
r_full = full.solve().radius
print(f"\nclustering radius: offline {r_full:.3f} | ours {sol.radius:.3f} "
      f"| baseline {bsol.radius:.3f}")
print(f"storage advantage at this z: coordinator {bres.stats.coordinator_peak} -> "
      f"{res.stats.coordinator_peak} items "
      f"({bres.stats.coordinator_peak / res.stats.coordinator_peak:.2f}x)")
