"""MPC example: clustering a distributed sensor fleet with faulty units.

Scenario from the paper's motivation (§1): telemetry from a fleet is
sharded across machines; most readings form k operational regimes, but a
batch of faulty sensors produced garbage — and, adversarially, the entire
faulty batch landed on ONE worker (e.g. one ingestion shard handled the
bad firmware rollout).  The deterministic 2-round algorithm (Algorithm 2)
handles this: its first round lets every machine guess its local outlier
count, so the faulty worker budgets ~z while healthy workers budget 0.

Run:  python examples/mpc_sensor_fleet.py
"""

import numpy as np

from repro import WeightedPointSet
from repro.core import charikar_greedy
from repro.mpc import (
    ceccarello_one_round_deterministic,
    partition_adversarial_outliers,
    two_round_coreset,
)
from repro.workloads import clustered_with_outliers

rng = np.random.default_rng(7)
n, k, z, eps, m = 6000, 4, 120, 0.5, 12

wl = clustered_with_outliers(n, k, z, d=3, rng=rng)
P = wl.point_set()
parts = partition_adversarial_outliers(P, wl.outlier_mask, m, rng)
print(f"fleet: {n} readings over {m} machines, k={k} regimes, z={z} faulty")
print(f"outliers per machine: {[int(wl.outlier_mask.sum()) if i == 1 else 0 for i in range(m)][:6]} ...")

# -- Algorithm 2 ------------------------------------------------------------
res = two_round_coreset(parts, k, z, eps)
print("\ndeterministic 2-round (Algorithm 2):")
print(f"  per-machine outlier budgets: {res.extras['outlier_budgets']}")
print(f"  sum of budgets {sum(res.extras['outlier_budgets'])} <= 2z = {2 * z}")
print(f"  coreset size {len(res.coreset)}, coordinator peak {res.stats.coordinator_peak} items,")
print(f"  worker peak {res.stats.worker_peak} items, rounds {res.stats.rounds}")

# -- baseline: CPP19 must budget z on EVERY machine ---------------------------
base = ceccarello_one_round_deterministic(parts, k, z, eps)
print("\nCPP19 deterministic 1-round baseline:")
print(f"  coreset size {len(base.coreset)}, coordinator peak {base.stats.coordinator_peak} items")

# -- end-to-end quality --------------------------------------------------------
r_full = charikar_greedy(P, k, z).radius
r_ours = charikar_greedy(res.coreset, k, z).radius
r_base = charikar_greedy(base.coreset, k, z).radius
print(f"\nclustering radius: full data {r_full:.3f} | ours {r_ours:.3f} | baseline {r_base:.3f}")
print(f"storage advantage at this z: coordinator {base.stats.coordinator_peak} -> "
      f"{res.stats.coordinator_peak} items "
      f"({base.stats.coordinator_peak / res.stats.coordinator_peak:.2f}x)")
