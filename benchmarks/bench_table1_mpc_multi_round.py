"""E3 — Table 1 row 5: the R-round storage trade-off (Algorithm 7).

Paper shape: more rounds => smaller working sets per machine (the
``n^{1/(R+1)} (k/eps^d + z)^{R/(R+1)}`` bound), at the price of error
``(1+eps)^R - 1``.
"""

from repro.experiments import format_table, mpc_multi_round_rows


def test_e3_rounds_tradeoff(once):
    rows = once(mpc_multi_round_rows, n=3000, m=27, rounds_values=(1, 2, 3))
    print()
    print(format_table(rows, "E3: R-round trade-off"))
    by_r = {r.params["R"]: r for r in rows}
    # coreset delivered to the coordinator shrinks as R grows
    assert by_r[3].metrics["coreset"] < by_r[1].metrics["coreset"]
    # and the error guarantee degrades exactly as (1+eps)^R - 1
    assert by_r[3].metrics["eps_guarantee"] > by_r[1].metrics["eps_guarantee"]
