"""E5/E11 — Figures 2-3: the Omega(k/eps^d) insertion-only lower bound.

Mechanism check: an exact maintainer survives only by storing every
cluster point (the Omega quantity); dropping ANY single cluster point and
playing the cross gadget makes the coreset provably violate the
``(1 +- eps)`` guarantee (Claims 13/14 + Lemma 41).
"""

from repro.experiments import format_table, insertion_lb_rows


def test_e5_insertion_lower_bound(once):
    rows = once(insertion_lb_rows)
    print()
    print(format_table(rows, "E5/E11: Lemma 12 adversary"))
    for r in rows:
        if r.algorithm == "exact-maintainer":
            assert r.metrics["survived"] == 1
            assert r.metrics["stored"] >= r.metrics["required"]
        else:
            assert r.metrics["fatal"] == r.metrics["attacks"], (
                "every dropped cluster point must be fatal"
            )
