"""E17 — ablation: coordinator re-compression (Lemma 5) on/off.

The final ``MBCConstruction`` at the coordinator shrinks the shipped union
to ``O(k/eps^d + z)`` at the cost of tripling the error parameter; this
ablation quantifies both sides.
"""

import numpy as np

from repro.core import charikar_greedy
from repro.experiments import Row, format_table
from repro.mpc import partition_random, two_round_coreset
from repro.workloads import clustered_with_outliers


def _run():
    rng = np.random.default_rng(0)
    wl = clustered_with_outliers(3000, 4, 32, 2, rng=rng)
    P = wl.point_set()
    parts = partition_random(P, 10, rng)
    rows = []
    r_full = charikar_greedy(P, 4, 32).radius
    for name, flag in (("recompress", True), ("union-only", False)):
        res = two_round_coreset(parts, 4, 32, 0.5, final_compress=flag)
        r_core = charikar_greedy(res.coreset, 4, 32).radius
        rows.append(Row("E17", name, {},
                        {"coreset": len(res.coreset),
                         "eps_guarantee": res.eps_guarantee,
                         "quality": r_core / r_full}))
    return rows


def test_e17_recompress_ablation(once):
    rows = once(_run)
    print()
    print(format_table(rows, "E17: coordinator re-compression ablation"))
    by = {r.algorithm: r for r in rows}
    assert by["recompress"].metrics["coreset"] < by["union-only"].metrics["coreset"]
    assert by["recompress"].metrics["eps_guarantee"] > by["union-only"].metrics["eps_guarantee"]
    for r in rows:
        assert 0.2 <= r.metrics["quality"] <= 5.0
