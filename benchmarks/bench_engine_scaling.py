"""Engine scaling: serial vs thread vs process executors on 2-round MPC.

One partitioned n >= 50k instance, three executors, identical outputs by
the engine's determinism contract — the only thing that may differ is
wall time.  On a multi-core machine (>= 4 cores) the process pool must
beat serial execution, since the machine-local greedy/MBC work is
embarrassingly parallel across the ``m`` simulated machines; on smaller
runners the numbers are still recorded but the speedup assertion is
skipped (there is nothing to win on one core).

Scale with ``REPRO_BENCH_N`` (default 50000).
"""

import os
import time

import numpy as np

from repro.engine import get_executor
from repro.experiments import Row, format_table
from repro.mpc import (
    partition_contiguous,
    recommended_num_machines,
    two_round_coreset,
)
from repro.workloads import clustered_with_outliers

N = int(os.environ.get("REPRO_BENCH_N", 50_000))
K, Z, EPS, D = 4, 32, 0.5, 2
JOBS = max(1, min(4, os.cpu_count() or 1))


def _run(executors=("serial", f"thread:{JOBS}", f"process:{JOBS}")):
    rng = np.random.default_rng(0)
    wl = clustered_with_outliers(N, K, Z, D, rng=rng)
    P = wl.point_set()
    m = recommended_num_machines(N, K, Z, EPS, D)
    parts = partition_contiguous(P, m)
    rows = []
    results = {}
    for name in executors:
        t0 = time.perf_counter()
        res = two_round_coreset(parts, K, Z, EPS, executor=get_executor(name))
        wall = time.perf_counter() - t0
        results[name] = res
        rows.append(Row(
            "E21", name, {"n": N, "m": m, "z": Z, "cores": os.cpu_count()},
            {
                "wall_s": round(wall, 3),
                "coreset": len(res.coreset),
                "worker_peak": res.stats.worker_peak,
            },
        ))
    return rows, results


def test_engine_scaling_two_round(once):
    rows, results = once(_run)
    print()
    print(format_table(rows, f"E21: executor scaling, 2-round MPC at n={N}"))

    # bit-identical outputs under every executor
    base = results["serial"]
    for name, res in results.items():
        assert np.array_equal(base.coreset.points, res.coreset.points), name
        assert np.array_equal(base.coreset.weights, res.coreset.weights), name
        assert base.stats == res.stats, name

    walls = {r.algorithm: r.metrics["wall_s"] for r in rows}
    cores = os.cpu_count() or 1
    if cores >= 4:
        # the acceptance bar: the process pool beats serial on real cores
        assert walls[f"process:{JOBS}"] < walls["serial"], walls
    else:
        print(f"(speedup assertion skipped: only {cores} core(s) available)")
