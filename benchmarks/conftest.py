"""Shared benchmark configuration.

Each bench regenerates one Table-1 row group or figure mechanism (see the
experiment index in DESIGN.md) and prints the measured rows; the timing
numbers from pytest-benchmark cover the core operation once (the drivers
are deterministic, so single-round pedantic timing is representative).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round (drivers are too heavy for the
    default calibration loop) and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
