"""E2 — Table 1 rows 3-4: deterministic MPC under adversarial partition.

Paper shape: CPP19 must budget ``z`` outliers on *every* machine
(``sqrt(n) z`` coordinator term); Algorithm 2's guessing mechanism keeps
the total budget at ``<= 2z``, so its coreset and coordinator storage stay
nearly flat in ``z``.
"""

from repro.experiments import format_table, mpc_two_round_rows


def test_e2_two_round_storage_vs_z(once):
    rows = once(mpc_two_round_rows, n=3000, z_values=(8, 32, 128))
    print()
    print(format_table(rows, "E2: deterministic MPC, adversarial outliers"))
    ours = {r.params["z"]: r for r in rows if r.algorithm == "ours-2round"}
    base = {r.params["z"]: r for r in rows if r.algorithm == "cpp19-det"}
    # budget mechanism: sum of guessed budgets <= 2z
    for z, r in ours.items():
        assert r.metrics["budget_sum"] <= 2 * z
    # baseline coreset grows like m*z; ours stays near k/eps^d + z
    assert base[128].metrics["coreset"] > 3 * ours[128].metrics["coreset"]
    assert ours[128].metrics["rounds"] == 2
