"""E10 — Figure 1: the mini-ball covering on the paper's k=2, z=5 scene.

Times ``MBCConstruction`` itself and checks the full Definition 2 /
Lemma 3 contract on the Figure-1-style instance.
"""

import numpy as np

from repro import WeightedPointSet, mbc_construction
from repro.core import mbc_size_bound, verify_mbc


def _figure1_instance():
    rng = np.random.default_rng(1)
    a = rng.normal((0, 0), 0.5, (200, 2))
    b = rng.normal((7, 0), 0.7, (160, 2))
    out = rng.uniform(20, 40, (5, 2))
    return WeightedPointSet.from_points(np.concatenate([a, b, out]))


def test_e10_mbc_construction(benchmark):
    P = _figure1_instance()
    k, z, eps = 2, 5, 0.5
    mbc = benchmark(mbc_construction, P, k, z, eps)
    print()
    print(f"E10: |P|={len(P)} -> |P*|={mbc.size} "
          f"(Lemma 7 bound {mbc_size_bound(k, z, eps, 2)})")
    assert mbc.size <= mbc_size_bound(k, z, eps, 2)
    chk = verify_mbc(P, mbc, k, z, eps)
    assert chk.ok, chk.details
