"""E16 — ablation: Algorithm 2's outlier-guessing vector versus the naive
local budget ``z`` on every machine.

This isolates the paper's §3 mechanism: the only difference between the
two runs is the budget rule, and the naive variant's coordinator storage
picks up the ``m * z`` term the mechanism removes.
"""

import numpy as np

from repro.experiments import Row, format_table
from repro.mpc import partition_adversarial_outliers, two_round_coreset
from repro.workloads import clustered_with_outliers


def _run(z: int, m: int = 8, n: int = 3000):
    rng = np.random.default_rng(0)
    wl = clustered_with_outliers(n, 4, z, 2, rng=rng)
    P = wl.point_set()
    parts = partition_adversarial_outliers(P, wl.outlier_mask, m, rng)
    with_g = two_round_coreset(parts, 4, z, 0.5, outlier_guessing=True)
    without = two_round_coreset(parts, 4, z, 0.5, outlier_guessing=False)
    rows = []
    for name, res in (("guessing", with_g), ("naive-z", without)):
        rows.append(Row("E16", name, {"z": z, "m": m},
                        {"coord_peak": res.stats.coordinator_peak,
                         "union": res.extras["union_size"],
                         "budget_sum": sum(res.extras["outlier_budgets"])}))
    return rows


def test_e16_outlier_guessing_ablation(once):
    rows = once(lambda: _run(16) + _run(128))
    print()
    print(format_table(rows, "E16: outlier-guessing ablation"))
    by = {(r.algorithm, r.params["z"]): r for r in rows}
    # budgets: guessing sums to <= 2z, naive pays m*z
    assert by[("guessing", 128)].metrics["budget_sum"] <= 2 * 128
    assert by[("naive-z", 128)].metrics["budget_sum"] == 8 * 128
    # the union the coordinator must hold picks up the Theta(m*z) term
    # without guessing; at z=128 that dwarfs the z=16 gap
    gap_small = by[("naive-z", 16)].metrics["union"] - by[("guessing", 16)].metrics["union"]
    gap_large = by[("naive-z", 128)].metrics["union"] - by[("guessing", 128)].metrics["union"]
    assert gap_large >= 3 * 128, "naive budget must pay ~m*z extra union items"
    assert gap_large > gap_small, "the gap must grow with z"
