"""API facade: batched `extend` versus per-point `insert` loops.

The `KCenterSession.extend(array)` hot path hands the whole batch to the
backend, which evaluates one metric matrix per chunk and applies runs of
absorptions as single bincount updates — versus one `to_set` call plus
Python overhead per point in the insert loop.  This bench feeds the same
10k-point stream both ways through the facade and asserts the batched
path wins while producing the bit-identical structure.

Also sweeps every registered backend through an identical session to
show the one-API-many-models surface the registry provides.
"""

import time

import numpy as np

from repro.api import KCenterSession, ProblemSpec, available_backends
from repro.experiments import Row, format_table

N = 10_000


def _stream(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    pts = np.concatenate(
        [rng.normal(c, 0.5, (N // 4, 2))
         for c in [(0, 0), (10, 0), (0, 10), (10, 10)]]
    )
    rng.shuffle(pts)
    return pts


def _ingest(batched: bool) -> "tuple[float, KCenterSession]":
    spec = ProblemSpec(k=4, z=20, eps=0.5, dim=2, seed=0)
    sess = KCenterSession.from_spec(spec, backend="insertion-only",
                                    size_cap=400)
    pts = _stream()
    t0 = time.perf_counter()
    if batched:
        sess.extend(pts)
    else:
        for p in pts:
            sess.insert(p)
    return time.perf_counter() - t0, sess


def test_batched_extend_beats_insert_loop(once):
    t_loop, s_loop = _ingest(batched=False)
    t_batch, s_batch = once(_ingest, batched=True)

    cs_l, cs_b = s_loop.coreset(), s_batch.coreset()
    # bit-identical structure: same representatives, weights, radius
    assert np.array_equal(cs_l.points, cs_b.points)
    assert np.array_equal(cs_l.weights, cs_b.weights)
    assert s_loop.backend.algo.r == s_batch.backend.algo.r

    # best-of-3 paired measurements: a single noisy-neighbor stall on a
    # shared runner must not fail the build (the claim is about the
    # code, not about one wall-clock sample)
    speedups = [t_loop / t_batch]
    while speedups[-1] <= 1.1 and len(speedups) < 3:
        t_loop, _ = _ingest(batched=False)
        t_batch, _ = _ingest(batched=True)
        speedups.append(t_loop / t_batch)
    speedup = max(speedups)

    print()
    print(format_table(
        [
            Row("API", "insert-loop", {"n": N}, {"seconds": t_loop}),
            Row("API", "batched-extend", {"n": N},
                {"seconds": t_batch, "speedup": speedup}),
        ],
        "batched extend vs per-point insert (10k points)",
    ))
    assert speedup > 1.1, (
        f"batched extend should be measurably faster; best of "
        f"{len(speedups)} attempts was {speedup:.2f}x"
    )


def test_backend_sweep(once):
    """One spec, every backend: the registry's comparison surface."""
    pts = _stream()[:2000]
    spec = ProblemSpec(k=4, z=20, eps=0.5, dim=2, seed=0)
    per_backend_options = {
        "dynamic": {"delta_universe": 64},
        "dynamic-deterministic": {"delta_universe": 64},
        "sliding-window": {"window": 500, "r_min": 0.05, "r_max": 200.0},
        "insertion-only": {"size_cap": 400},
        "ceccarello-stream": {},
    }

    def _sweep():
        rows = []
        for name in available_backends():
            opts = per_backend_options.get(name, {})
            sess = KCenterSession.from_spec(spec, backend=name, **opts)
            data = (np.clip(np.abs(pts).astype(int) + 1, 1, 64)
                    if name.startswith("dynamic") else pts)
            t0 = time.perf_counter()
            sess.extend(data)
            sol = sess.solve()
            rows.append(Row(
                "API", name, {"n": len(data)},
                {
                    "coreset": sol.coreset_size,
                    "radius": sol.radius,
                    "eps_guar": sol.eps_guarantee,
                    "seconds": time.perf_counter() - t0,
                },
            ))
        return rows

    rows = once(_sweep)
    print()
    print(format_table(rows, "one spec, every registered backend"))
    assert len(rows) >= 8, "at least 8 registered backends expected"
    for r in rows:
        assert r.metrics["coreset"] > 0
        assert r.metrics["radius"] > 0
