"""E6 — Table 1 row 12: fully dynamic streaming sketch.

Paper shape: storage grows polylogarithmically in ``Delta`` (the
``log^4(k Delta / eps delta)`` factor) while the recovered coreset stays
at ``O(k/eps^d + z)`` cells and preserves the live weight exactly.
"""

from repro.experiments import dynamic_rows, format_table


def test_e6_dynamic_storage_vs_delta(once):
    rows = once(dynamic_rows, delta_values=(64, 256, 1024), n=150, deletions=70)
    print()
    print(format_table(rows, "E6: fully dynamic sketch storage vs Delta"))
    by_delta = {r.params["Delta"]: r for r in rows}
    # storage grows with Delta (more grid levels), but sublinearly
    assert by_delta[1024].metrics["storage_cells"] > by_delta[64].metrics["storage_cells"]
    growth = by_delta[1024].metrics["storage_cells"] / by_delta[64].metrics["storage_cells"]
    assert growth < 1024 / 64, "storage must grow far slower than the universe"
    # exact weight recovery after deletions (strict turnstile correctness)
    for r in rows:
        assert r.metrics["weight_ok"] == 1
