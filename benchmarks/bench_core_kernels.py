"""Core-kernel speedups: the incremental radius search and the gridded
absorption loop versus the frozen pre-refactor reference.

The kernels PR's acceptance bar, enforced as assertions:

* ``charikar_greedy`` at n=2048 (the exact-candidate path): >= 3x faster
  than :func:`repro.core._greedy_reference.charikar_greedy_reference`
  with bit-identical output (measured ~6x on one core);
* ``mbc_construction`` at n=50k with a supplied radius: >= 2x faster
  than the pre-refactor scalar absorption with bit-identical output
  (measured ~7x).

``benchmarks/run_all.py --json`` emits the same measurements as a
machine-readable document for the CI perf trajectory.
"""

import time

import numpy as np

from repro.core._greedy_reference import (
    charikar_greedy_reference,
    greedy_absorb_reference,
)
from repro.core.greedy import charikar_greedy
from repro.core.mbc import mbc_construction
from repro.core.metrics import get_metric
from repro.core.points import WeightedPointSet


def _instance(n, d=2, seed=0, wmax=5):
    rng = np.random.default_rng(seed)
    return WeightedPointSet(rng.random((n, d)) * 10.0, rng.integers(1, wmax, n))


def test_charikar_speedup_n2048(once):
    P = _instance(2048)
    k, z = 16, 64
    t0 = time.perf_counter()
    old = charikar_greedy_reference(P, k, z)
    old_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    new = once(charikar_greedy, P, k, z)
    new_s = time.perf_counter() - t0

    # float64 results are bit-identical to the pre-refactor path
    assert new.radius == old.radius and new.guess == old.guess
    assert np.array_equal(new.centers_idx, old.centers_idx)
    assert np.array_equal(new.uncovered, old.uncovered)

    speedup = old_s / new_s
    print(f"\ncharikar_greedy n=2048: old={old_s:.3f}s new={new_s:.3f}s "
          f"({speedup:.1f}x)")
    assert speedup >= 3.0, (
        f"expected >= 3x on charikar_greedy at n=2048, got {speedup:.2f}x"
    )


def test_mbc_speedup_n50k(once):
    n, k, z, eps, radius = 50000, 8, 32, 0.1, 0.6
    P = _instance(n, wmax=2)
    met = get_metric(None)
    delta = eps * radius / 3.0

    t0 = time.perf_counter()
    old_cs, old_assign = greedy_absorb_reference(P, delta, met)
    old_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    mbc = once(mbc_construction, P, k, z, eps, met, radius=radius)
    new_s = time.perf_counter() - t0

    assert np.array_equal(mbc.coreset.points, old_cs.points)
    assert np.array_equal(mbc.coreset.weights, old_cs.weights)
    assert np.array_equal(mbc.assignment, old_assign)

    speedup = old_s / new_s
    print(f"\nmbc_construction n=50k: old={old_s:.3f}s new={new_s:.3f}s "
          f"({speedup:.1f}x, coreset={mbc.size})")
    assert speedup >= 2.0, (
        f"expected >= 2x on mbc_construction at n=50k, got {speedup:.2f}x"
    )
