"""E20 — scaling: worker storage versus n (Theorem 10's sqrt(n) shape).

Runs Algorithm 2 at the paper's recommended machine count
``m = Theta(sqrt(n eps^d / k))`` across a geometric n-sweep and fits the
growth exponent of the worker-peak storage: the paper predicts ~0.5
(``sqrt(n k)/eps^d`` per worker), far below linear.
"""

import numpy as np

from repro.experiments import Row, format_table
from repro.mpc import partition_contiguous, recommended_num_machines, two_round_coreset
from repro.workloads import clustered_with_outliers


def _run(n_values=(1000, 4000, 16000)):
    rows = []
    k, z, eps, d = 4, 16, 0.5, 2
    for n in n_values:
        rng = np.random.default_rng(0)
        wl = clustered_with_outliers(n, k, z, d, rng=rng)
        P = wl.point_set()
        m = recommended_num_machines(n, k, z, eps, d)
        parts = partition_contiguous(P, m)
        res = two_round_coreset(parts, k, z, eps)
        rows.append(Row(
            "E20", "ours-2round", {"n": n, "m": m},
            {
                "worker_peak": res.stats.worker_peak,
                "coord_peak": res.stats.coordinator_peak,
                "coreset": len(res.coreset),
            },
        ))
    return rows


def test_e20_sqrt_n_scaling(once):
    rows = once(_run)
    print()
    print(format_table(rows, "E20: worker storage vs n at m = Theta(sqrt(n))"))
    ns = np.array([r.params["n"] for r in rows], dtype=float)
    peaks = np.array([r.metrics["worker_peak"] for r in rows], dtype=float)
    # fit growth exponent on the log-log sweep
    exponent = np.polyfit(np.log(ns), np.log(peaks), 1)[0]
    print(f"fitted worker-peak exponent: {exponent:.3f} (paper: ~0.5)")
    assert 0.3 <= exponent <= 0.75, exponent
    # the coreset size is essentially n-independent
    sizes = [r.metrics["coreset"] for r in rows]
    assert max(sizes) <= 2.5 * min(sizes)
