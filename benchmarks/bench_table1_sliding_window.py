"""E8 — Table 1 rows 9-11: sliding-window storage and answer quality.

Paper shape: the DBMZ structure stores ``O((kz/eps^d) log sigma)`` items
(growing with z via the z+1 recency buffers, and with the ladder length),
independent of the stream length; its window radius tracks offline
recomputation.
"""

from repro.experiments import format_table, sliding_window_rows


def test_e8_sliding_window(once):
    rows = once(sliding_window_rows, n=1500, window=300, z_values=(2, 8))
    print()
    print(format_table(rows, "E8: sliding-window storage and quality"))
    by_z = {r.params["z"]: r for r in rows}
    # storage grows with z (the z+1 buffers)
    assert by_z[8].metrics["stored"] > by_z[2].metrics["stored"]
    # answer within a small constant of offline recomputation
    for r in rows:
        assert 0.3 <= r.metrics["quality"] <= 3.5
