"""E14 — Figures 6-7: the Omega((kz/eps^d) log sigma) sliding-window bound.

Mechanism (Claim 31): at every scale j*, the window optimum drops from
``2^{j*} zeta (2 lambda) / 2``-scale to at most
``2^{j*} zeta (2 lambda - 1)/2`` at the instant the attacked point
expires — a factor below ``1 - 3 eps``, so an algorithm without that
expiration time stored must err.  Verified with exact continuous optima.
"""

from repro.experiments import format_table, sliding_lb_rows


def test_e14_sliding_window_lower_bound(once):
    rows = once(sliding_lb_rows, g=4)
    print()
    print(format_table(rows, "E14: Theorem 30 / Claim 31"))
    for r in rows:
        assert r.metrics["ratio"] <= r.metrics["bound_1_minus_4eps"] + 1e-9
        assert r.metrics["violates_1pm_eps"] == 1
