"""Render the committed perf trajectory (all ``BENCH_PR*.json``) as a dashboard.

Every perf PR commits a ``BENCH_PR<N>.json`` document produced by
``benchmarks/run_all.py --json``.  This tool ingests the whole committed
series, schema-validates each document, aligns entries by id across PRs,
and renders a static dashboard:

* ``docs/perf_trajectory.md`` — markdown: per-entry timing tables
  PR-over-PR with regression/improvement annotations (vs best-of-last-3,
  the same rule ``check_bench_schema.py --compare`` gates CI on);
* ``docs/perf_trajectory.html`` — a self-contained HTML page with one
  inline-SVG timing curve per entry (no JS, no external assets).

Output is deterministic (no timestamps; content depends only on the
input documents), so the rendered dashboard is committed next to the
series and CI regenerates it and fails on drift, exactly like the
registry catalogues::

    PYTHONPATH=src python benchmarks/trajectory.py            # writes docs/
    PYTHONPATH=src python benchmarks/trajectory.py --print    # stdout only

Usage::

    python benchmarks/trajectory.py [--root DIR] [--out-md PATH]
                                    [--out-html PATH] [--max-slowdown R]
                                    [--print]
"""

from __future__ import annotations

import argparse
import html
import json
import os
import re
import sys

#: committed series file pattern; the captured group orders the series
PR_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")

#: slowdown ratio (vs best-of-last-3) annotated as a regression
DEFAULT_MAX_SLOWDOWN = 1.25

#: speedup ratio (vs previous PR) annotated as an improvement
IMPROVEMENT_RATIO = 0.8

#: history window for the best-of reference (mirrors check_bench_schema)
BEST_OF = 3


class TrajectoryError(ValueError):
    """A series document failed validation (message names the file)."""


def discover(root: str) -> "list[tuple[str, str]]":
    """The committed series under ``root``: ``[(label, path), ...]``.

    Files are matched by :data:`PR_PATTERN` and ordered by PR number, so
    the series reads oldest to newest regardless of directory order.
    """
    found = []
    for name in os.listdir(root):
        m = PR_PATTERN.match(name)
        if m:
            found.append((int(m.group(1)), name))
    return [(f"PR{num}", os.path.join(root, name))
            for num, name in sorted(found)]


def load_doc(path: str) -> dict:
    """Load and schema-validate one bench document.

    Checks the structural contract documented in ``docs/benchmarks.md``:
    a JSON object with a string ``suite``, a ``quick`` bool, and an
    ``entries`` list of objects each carrying a unique string ``id``, a
    ``params`` object, and a numeric-or-null ``new_s``/``old_s``.

    Raises
    ------
    TrajectoryError
        With the file name and the exact violated requirement, so a
        malformed commit is actionable from the CI log alone.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise TrajectoryError(f"{path}: unreadable bench document: {exc}") \
            from exc
    if not isinstance(doc, dict):
        raise TrajectoryError(f"{path}: top level must be an object, "
                              f"got {type(doc).__name__}")
    if not isinstance(doc.get("suite"), str):
        raise TrajectoryError(f"{path}: missing string 'suite'")
    if not isinstance(doc.get("quick"), bool):
        raise TrajectoryError(f"{path}: missing bool 'quick'")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise TrajectoryError(f"{path}: 'entries' must be a list, "
                              f"got {type(entries).__name__}")
    seen = set()
    for i, entry in enumerate(entries):
        where = f"{path}: entries[{i}]"
        if not isinstance(entry, dict):
            raise TrajectoryError(f"{where}: must be an object")
        eid = entry.get("id")
        if not isinstance(eid, str) or not eid:
            raise TrajectoryError(f"{where}: missing string 'id'")
        if eid in seen:
            raise TrajectoryError(f"{path}: duplicate entry id {eid!r}")
        seen.add(eid)
        if not isinstance(entry.get("params"), dict):
            raise TrajectoryError(f"{where} ({eid!r}): missing object 'params'")
        for key in ("new_s", "old_s"):
            value = entry.get(key, None)
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, (int, float))):
                raise TrajectoryError(
                    f"{where} ({eid!r}): {key!r} must be a number or null, "
                    f"got {type(value).__name__}")
        if not isinstance(entry.get("new_s"), (int, float)):
            raise TrajectoryError(f"{where} ({eid!r}): 'new_s' is required")
    return doc


def build_series(docs: "list[tuple[str, dict]]") -> dict:
    """Align a list of ``(label, doc)`` into one per-entry series.

    Returns
    -------
    dict
        ``{"suite", "labels": [...], "entries": {id: [entry-or-None per
        label]}}`` — entry ids in first-appearance order, one aligned
        slot per PR so gaps (an entry introduced mid-series) are
        explicit ``None`` values, never silently compacted.
    """
    suites = {doc.get("suite") for _, doc in docs}
    if len(suites) > 1:
        raise TrajectoryError(
            f"series mixes suites {sorted(s or '?' for s in suites)}; "
            "all BENCH_PR*.json documents must come from one suite")
    labels = [label for label, _ in docs]
    ids: "list[str]" = []
    for _, doc in docs:
        for entry in doc["entries"]:
            if entry["id"] not in ids:
                ids.append(entry["id"])
    entries = {
        eid: [
            next((e for e in doc["entries"] if e["id"] == eid), None)
            for _, doc in docs
        ]
        for eid in ids
    }
    return {"suite": docs[0][1].get("suite") if docs else "?",
            "labels": labels, "entries": entries}


def _comparable(prev: "dict | None", cur: "dict | None") -> bool:
    """Whether two aligned slots can be compared by timing."""
    return (prev is not None and cur is not None
            and prev.get("params") == cur.get("params")
            and isinstance(prev.get("new_s"), (int, float))
            and prev["new_s"] > 0)


def annotate(series: dict,
             max_slowdown: float = DEFAULT_MAX_SLOWDOWN) -> dict:
    """Per-slot verdicts for every entry in the series.

    For each PR slot the reference is the fastest params-matched
    ``new_s`` among the up-to-:data:`BEST_OF` preceding PRs (the same
    best-of-last-3 rule the CI gate enforces).  Returns ``{id: [verdict
    per label]}`` where a verdict is ``None`` (no basis), ``"ok"``,
    ``"improved"`` (beat the previous PR by >= 1/0.8x) or
    ``"regressed"`` (exceeded best-of-last-3 by > max_slowdown).
    """
    out = {}
    for eid, slots in series["entries"].items():
        verdicts: "list" = []
        for i, cur in enumerate(slots):
            if cur is None or not isinstance(cur.get("new_s"), (int, float)):
                verdicts.append(None)
                continue
            window = [p for p in slots[max(0, i - BEST_OF):i]
                      if _comparable(p, cur)]
            if not window:
                verdicts.append(None)
                continue
            best = min(p["new_s"] for p in window)
            if cur["new_s"] > best * max_slowdown:
                verdicts.append("regressed")
            elif _comparable(slots[i - 1], cur) \
                    and cur["new_s"] < slots[i - 1]["new_s"] * IMPROVEMENT_RATIO:
                verdicts.append("improved")
            else:
                verdicts.append("ok")
        out[eid] = verdicts
    return out


def _fmt_s(value) -> str:
    """Seconds, compactly."""
    if value is None:
        return "–"
    return f"{value:.4g}s"


_MARK = {"regressed": " ⚠", "improved": " ▼", "ok": "", None: ""}


def render_markdown(series: dict,
                    max_slowdown: float = DEFAULT_MAX_SLOWDOWN) -> str:
    """The markdown dashboard: overview pivot + per-entry detail."""
    labels = series["labels"]
    verdicts = annotate(series, max_slowdown)
    lines = [
        "# Performance trajectory",
        "",
        "Wall-clock `new_s` of every committed `BENCH_PR*.json` entry, "
        "PR over PR.",
        "Generated by `python benchmarks/trajectory.py` — regenerate "
        "after committing",
        "a new `BENCH_PR*.json` (CI diffs this file against the series).",
        "",
        f"Suite: `{series['suite']}` · PRs: "
        + ", ".join(labels)
        + f" · regression threshold: >{max_slowdown:g}x best-of-last-"
        + f"{BEST_OF}",
        "",
        "Markers: ⚠ regression vs best-of-last-3 · ▼ improvement vs "
        "previous PR · – not benchmarked in that PR.",
        "",
        "## Overview",
        "",
        "| entry | " + " | ".join(labels) + " |",
        "|" + "---|" * (len(labels) + 1),
    ]
    for eid, slots in series["entries"].items():
        row = [f"`{eid}`"]
        for slot, verdict in zip(slots, verdicts[eid]):
            cell = "–" if slot is None else _fmt_s(slot.get("new_s"))
            row.append(cell + _MARK[verdict])
        lines.append("| " + " | ".join(row) + " |")
    lines += ["", "[Static HTML dashboard with timing curves]"
                  "(perf_trajectory.html)", ""]
    for eid, slots in series["entries"].items():
        latest = next(s for s in reversed(slots) if s is not None)
        lines += [f"## `{eid}`", ""]
        params = ", ".join(f"{k}={v}" for k, v in
                           sorted(latest.get("params", {}).items()))
        if params:
            lines += [f"Params (latest): `{params}`", ""]
        header = ["PR", "new_s", "old_s", "speedup", "verdict"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for label, slot, verdict in zip(labels, slots, verdicts[eid]):
            if slot is None:
                lines.append(f"| {label} | – | – | – | not benchmarked |")
                continue
            speedup = slot.get("speedup")
            note = verdict or "first measurement"
            if verdict == "regressed":
                window = [p for p in slots if _comparable(p, slot)]
                note = f"**regressed** (> {max_slowdown:g}x best-of-last-3)" \
                    if window else "regressed"
            elif verdict == "improved":
                note = "improved vs previous PR"
            lines.append(
                "| " + " | ".join([
                    label, _fmt_s(slot.get("new_s")), _fmt_s(slot.get("old_s")),
                    f"{speedup:.2f}x" if isinstance(speedup, (int, float))
                    else "–",
                    note,
                ]) + " |"
            )
        lines.append("")
    return "\n".join(lines)


def _svg_curve(labels: "list[str]", slots: "list[dict | None]",
               verdicts: "list", width: int = 520, height: int = 150) -> str:
    """One inline-SVG timing curve (log-ish autoscaled, no deps)."""
    pad = 34
    points = [(i, s["new_s"]) for i, s in enumerate(slots)
              if s is not None and isinstance(s.get("new_s"), (int, float))]
    if not points:
        return "<svg/>"
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    span = (hi - lo) or max(hi, 1e-9)
    lo, hi = lo - 0.1 * span, hi + 0.1 * span

    def x(i):
        if len(labels) == 1:
            return pad + (width - 2 * pad) / 2
        return pad + (width - 2 * pad) * i / (len(labels) - 1)

    def y(v):
        return height - pad - (height - 2 * pad) * (v - lo) / (hi - lo)

    colors = {"regressed": "#c62828", "improved": "#2e7d32"}
    parts = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
             f'height="{height}" role="img">']
    parts.append(
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#999"/>')
    poly = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in points)
    parts.append(f'<polyline points="{poly}" fill="none" stroke="#5e35b1" '
                 'stroke-width="2"/>')
    for i, v in points:
        color = colors.get(verdicts[i], "#5e35b1")
        parts.append(f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="4" '
                     f'fill="{color}"><title>{html.escape(labels[i])}: '
                     f'{v:.4g}s</title></circle>')
        parts.append(f'<text x="{x(i):.1f}" y="{y(v) - 8:.1f}" '
                     'font-size="10" text-anchor="middle" fill="#333">'
                     f'{v:.3g}</text>')
    for i, label in enumerate(labels):
        parts.append(f'<text x="{x(i):.1f}" y="{height - pad + 14}" '
                     'font-size="11" text-anchor="middle" fill="#555">'
                     f'{html.escape(label)}</text>')
    parts.append("</svg>")
    return "".join(parts)


def render_html(series: dict,
                max_slowdown: float = DEFAULT_MAX_SLOWDOWN) -> str:
    """The self-contained HTML dashboard (inline SVG, no JS/assets)."""
    labels = series["labels"]
    verdicts = annotate(series, max_slowdown)
    body = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>Performance trajectory</title>",
        "<style>",
        "body{font-family:system-ui,sans-serif;margin:2rem auto;"
        "max-width:60rem;color:#222}",
        "h2{border-bottom:1px solid #ddd;padding-bottom:.2rem}",
        ".regressed{color:#c62828;font-weight:bold}",
        ".improved{color:#2e7d32}",
        "code{background:#f4f2f8;padding:.1rem .3rem;border-radius:3px}",
        "table{border-collapse:collapse}td,th{border:1px solid #ddd;"
        "padding:.25rem .6rem;font-size:.9rem}",
        "</style></head><body>",
        "<h1>Performance trajectory</h1>",
        f"<p>Suite <code>{html.escape(str(series['suite']))}</code> · "
        + " → ".join(html.escape(lb) for lb in labels)
        + f" · regression: &gt;{max_slowdown:g}&times; best-of-last-"
        + f"{BEST_OF}.</p>",
    ]
    for eid, slots in series["entries"].items():
        body.append(f"<h2><code>{html.escape(eid)}</code></h2>")
        body.append(_svg_curve(labels, slots, verdicts[eid]))
        rows = ["<table><tr><th>PR</th><th>new_s</th><th>speedup</th>"
                "<th>verdict</th></tr>"]
        for label, slot, verdict in zip(labels, slots, verdicts[eid]):
            if slot is None:
                rows.append(f"<tr><td>{html.escape(label)}</td>"
                            "<td>–</td><td>–</td><td>not benchmarked</td></tr>")
                continue
            speedup = slot.get("speedup")
            speedup_cell = f"{speedup:.2f}x" \
                if isinstance(speedup, (int, float)) else "–"
            cls = f' class="{verdict}"' if verdict in ("regressed",
                                                       "improved") else ""
            rows.append(
                f"<tr><td>{html.escape(label)}</td>"
                f"<td>{_fmt_s(slot.get('new_s'))}</td>"
                f"<td>{speedup_cell}</td>"
                f"<td{cls}>{html.escape(verdict or 'first')}</td></tr>")
        rows.append("</table>")
        body.extend(rows)
    body.append("</body></html>")
    return "\n".join(body)


def main(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/trajectory.py",
        description="Render the committed BENCH_PR*.json perf-trajectory "
                    "series as a markdown + HTML dashboard.",
    )
    parser.add_argument("--root", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."),
        help="directory holding the BENCH_PR*.json series (default: repo root)")
    parser.add_argument("--out-md", default=None,
                        help="markdown output (default: <root>/docs/"
                             "perf_trajectory.md)")
    parser.add_argument("--out-html", default=None,
                        help="HTML output (default: <root>/docs/"
                             "perf_trajectory.html)")
    parser.add_argument("--max-slowdown", type=float,
                        default=DEFAULT_MAX_SLOWDOWN,
                        help="regression annotation threshold vs "
                             "best-of-last-3 (default 1.25)")
    parser.add_argument("--print", action="store_true", dest="print_only",
                        help="print the markdown to stdout, write nothing")
    args = parser.parse_args(argv)

    root = os.path.normpath(args.root)
    found = discover(root)
    if not found:
        print(f"no BENCH_PR*.json found under {root}", file=sys.stderr)
        return 2
    try:
        docs = [(label, load_doc(path)) for label, path in found]
        series = build_series(docs)
        md = render_markdown(series, args.max_slowdown)
        page = render_html(series, args.max_slowdown)
    except TrajectoryError as exc:
        print(f"TRAJECTORY ERROR: {exc}", file=sys.stderr)
        return 1
    if args.print_only:
        print(md)
        return 0
    out_md = args.out_md or os.path.join(root, "docs", "perf_trajectory.md")
    out_html = args.out_html or os.path.join(root, "docs",
                                             "perf_trajectory.html")
    for path, content in ((out_md, md + "\n"), (out_html, page + "\n")):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            fh.write(content)
    print(f"wrote {out_md} and {out_html} "
          f"({len(series['entries'])} entries across {len(found)} PRs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
