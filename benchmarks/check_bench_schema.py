"""Diff two benchmark JSON documents by schema, not by timing.

CI regenerates the quick benchmark document on every run and compares it
against the committed reference (``BENCH_PR8.json``)::

    PYTHONPATH=src python benchmarks/run_all.py --quick --json /tmp/bench.json
    python benchmarks/check_bench_schema.py BENCH_PR8.json /tmp/bench.json

``--require id1,id2`` additionally asserts that the named entry ids are
present in the candidate document (CI pins the PR's new scaling-curve
entries so a future edit can't silently drop them).

The comparison is structural: top-level key sets, the suite name, the
ordered list of entry ids, each entry's key set, and each value's JSON
type must match.  Timings, throughputs, versions and timestamps are
expected to drift run-to-run and are deliberately NOT compared — the
check catches a bench being dropped, renamed, or silently changing its
report shape, without making CI flaky on runner speed.

``--compare OLD1.json [OLD2.json ...] NEW.json [--max-slowdown R]
[--best-of K]`` is a second mode that DOES look at timings: the last
path is the candidate, every preceding path is history (oldest first —
the committed ``BENCH_PR*.json`` series).  Each candidate entry is
gated against the *fastest* params-matched ``new_s`` among the last
``K`` (default 3) history documents that carry it, and fails when the
candidate regressed by more than the allowed ratio (default 1.25) —
so a slow PR cannot reset the baseline for the next one.  The mode is
strict about series integrity: an entry present in the most recent
history document but missing from the candidate is an error (a bench
was dropped), as is a candidate ``new_s`` that is not a positive number
(type drift).  Entries whose ``params`` changed are skipped with a note
(a bench that changed its workload is not a regression), as are entries
new in the candidate.  CI runs this over the whole committed series to
catch order-of-magnitude performance regressions while the generous
ratio absorbs runner noise.
"""

from __future__ import annotations

import json
import sys

#: Values whose *presence* matters but whose content is run-dependent.
_VOLATILE_TOP_LEVEL = {"version", "python", "numpy", "timestamp"}


def _json_type(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    return type(value).__name__


def _compatible(a, b) -> bool:
    """Whether two values agree in JSON type (null matches number: a
    bench with no reference timing reports ``old_s: null``)."""
    ta, tb = _json_type(a), _json_type(b)
    return ta == tb or {ta, tb} == {"null", "number"}


def compare(reference: dict, candidate: dict) -> "list[str]":
    """Structural differences between two bench documents (empty = OK)."""
    problems = []
    ref_keys, cand_keys = set(reference), set(candidate)
    if ref_keys != cand_keys:
        problems.append(
            f"top-level keys differ: missing={sorted(ref_keys - cand_keys)} "
            f"extra={sorted(cand_keys - ref_keys)}")
    if reference.get("suite") != candidate.get("suite"):
        problems.append(
            f"suite differs: {reference.get('suite')!r} != "
            f"{candidate.get('suite')!r}")
    ref_entries = reference.get("entries") or []
    cand_entries = candidate.get("entries") or []
    ref_ids = [e.get("id") for e in ref_entries]
    cand_ids = [e.get("id") for e in cand_entries]
    if ref_ids != cand_ids:
        problems.append(f"entry ids differ: {ref_ids} != {cand_ids}")
        return problems
    for ref, cand in zip(ref_entries, cand_entries):
        eid = ref.get("id")
        rk, ck = set(ref), set(cand)
        if rk != ck:
            problems.append(
                f"entry {eid!r}: keys differ: missing={sorted(rk - ck)} "
                f"extra={sorted(ck - rk)}")
            continue
        for key in sorted(rk):
            if not _compatible(ref[key], cand[key]):
                problems.append(
                    f"entry {eid!r}: {key!r} changed type "
                    f"{_json_type(ref[key])} -> {_json_type(cand[key])}")
        if ref.get("params") and set(ref["params"]) != set(cand["params"]):
            problems.append(
                f"entry {eid!r}: params keys differ: "
                f"{sorted(ref['params'])} != {sorted(cand['params'])}")
    return problems


def _timing(entry) -> "float | None":
    """An entry's ``new_s`` as a positive float, or ``None``."""
    value = entry.get("new_s")
    if isinstance(value, (int, float)) and not isinstance(value, bool) \
            and value > 0:
        return float(value)
    return None


def compare_timings(history, candidate: dict, max_slowdown: float,
                    best_of: int = 3) -> "tuple[list[str], list[str]]":
    """Timing regressions of ``candidate`` against a bench series.

    Parameters
    ----------
    history:
        One reference document (the legacy two-document mode) or a list
        of documents oldest-first (the committed ``BENCH_PR*.json``
        series).
    candidate:
        The document under test.
    max_slowdown:
        Allowed ``new_s`` ratio against the reference timing.
    best_of:
        The reference timing is the *minimum* params-matched ``new_s``
        over the last ``best_of`` history documents carrying the entry
        — a slow PR cannot relax the gate for its successor.

    Returns
    -------
    tuple of (problems, notes)
        Problems fail the gate: a regression beyond the ratio, an entry
        the most recent history document has but the candidate dropped,
        or a candidate ``new_s`` that is not a positive number (type
        drift).  Params changes and candidate-only entries are notes.
    """
    docs = history if isinstance(history, list) else [history]
    problems, notes = [], []
    cand_by_id = {e.get("id"): e for e in candidate.get("entries") or []}
    hist_maps = [{e.get("id"): e for e in doc.get("entries") or []}
                 for doc in docs]
    latest = hist_maps[-1] if hist_maps else {}
    all_hist_ids = set().union(*hist_maps) if hist_maps else set()
    for eid in sorted(set(latest) - set(cand_by_id)):
        problems.append(
            f"entry {eid!r} dropped: present in the most recent reference "
            f"document but missing from the candidate")
    for eid in sorted(all_hist_ids - set(cand_by_id) - set(latest)):
        notes.append(f"entry {eid!r} only in older references; not compared")
    for eid in sorted(set(cand_by_id) - all_hist_ids):
        notes.append(f"entry {eid!r} only in candidate; not compared")
    for eid in sorted(set(cand_by_id) & all_hist_ids):
        cand = cand_by_id[eid]
        cand_s = _timing(cand)
        if cand_s is None:
            problems.append(
                f"entry {eid!r}: candidate new_s must be a positive number, "
                f"got {cand.get('new_s')!r} "
                f"({type(cand.get('new_s')).__name__})")
            continue
        # the last `best_of` history docs that carry this entry at all,
        # then the comparable params-matched measurements among them
        window = [m[eid] for m in hist_maps if eid in m][-int(best_of):]
        matched = [_timing(e) for e in window
                   if e.get("params") == cand.get("params")
                   and _timing(e) is not None]
        if not matched:
            notes.append(f"entry {eid!r}: params changed (or no comparable "
                         "reference timing); not compared")
            continue
        ref_s = min(matched)
        ratio = cand_s / ref_s
        if ratio > max_slowdown:
            problems.append(
                f"entry {eid!r}: new_s regressed {ref_s:.4g}s -> "
                f"{cand_s:.4g}s ({ratio:.2f}x > {max_slowdown:.2f}x "
                f"best-of-last-{len(matched)})")
        else:
            notes.append(f"entry {eid!r}: {ref_s:.4g}s -> {cand_s:.4g}s "
                         f"({ratio:.2f}x vs best-of-last-{len(matched)}) OK")
    return problems, notes


def main(argv: "list[str]") -> int:
    require: "list[str]" = []
    paths: "list[str]" = []
    compare_mode = False
    max_slowdown = 1.25
    best_of = 3
    it = iter(argv)
    for arg in it:
        if arg == "--require":
            value = next(it, None)
            if value is None:
                print("--require needs a comma-separated id list",
                      file=sys.stderr)
                return 2
            require.extend(x for x in value.split(",") if x)
        elif arg == "--compare":
            compare_mode = True
        elif arg == "--max-slowdown":
            value = next(it, None)
            try:
                max_slowdown = float(value)
            except (TypeError, ValueError):
                print("--max-slowdown needs a positive ratio",
                      file=sys.stderr)
                return 2
            if max_slowdown <= 0:
                print("--max-slowdown needs a positive ratio",
                      file=sys.stderr)
                return 2
        elif arg == "--best-of":
            value = next(it, None)
            try:
                best_of = int(value)
            except (TypeError, ValueError):
                print("--best-of needs a positive integer", file=sys.stderr)
                return 2
            if best_of < 1:
                print("--best-of needs a positive integer", file=sys.stderr)
                return 2
        else:
            paths.append(arg)
    usage = ("usage: python benchmarks/check_bench_schema.py "
             "[--require id1,id2] REFERENCE.json CANDIDATE.json\n"
             "       python benchmarks/check_bench_schema.py "
             "--compare [--max-slowdown R] [--best-of K] "
             "OLD1.json [OLD2.json ...] NEW.json")
    if compare_mode:
        if len(paths) < 2:
            print(usage, file=sys.stderr)
            return 2
        docs = []
        for path in paths:
            with open(path) as fh:
                docs.append(json.load(fh))
        problems, notes = compare_timings(
            docs[:-1], docs[-1], max_slowdown, best_of=best_of)
        for note in notes:
            print(f"compare: {note}")
        for p in problems:
            print(f"TIMING REGRESSION: {p}", file=sys.stderr)
        if problems:
            return 1
        print(f"bench timings OK over {len(docs) - 1} reference document(s) "
              f"(max allowed slowdown {max_slowdown:.2f}x, "
              f"best-of-last-{best_of})")
        return 0
    if len(paths) != 2:
        print(usage, file=sys.stderr)
        return 2
    with open(paths[0]) as fh:
        reference = json.load(fh)
    with open(paths[1]) as fh:
        candidate = json.load(fh)
    problems = compare(reference, candidate)
    cand_ids = {e.get("id") for e in candidate.get("entries") or []}
    for rid in require:
        if rid not in cand_ids:
            problems.append(f"required entry id {rid!r} missing")
    for p in problems:
        print(f"SCHEMA DIFF: {p}", file=sys.stderr)
    if problems:
        return 1
    print(f"bench schema OK: {len(reference.get('entries') or [])} entries, "
          f"suite {reference.get('suite')!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
