"""Diff two benchmark JSON documents by schema, not by timing.

CI regenerates the quick benchmark document on every run and compares it
against the committed reference (``BENCH_PR8.json``)::

    PYTHONPATH=src python benchmarks/run_all.py --quick --json /tmp/bench.json
    python benchmarks/check_bench_schema.py BENCH_PR8.json /tmp/bench.json

``--require id1,id2`` additionally asserts that the named entry ids are
present in the candidate document (CI pins the PR's new scaling-curve
entries so a future edit can't silently drop them).

The comparison is structural: top-level key sets, the suite name, the
ordered list of entry ids, each entry's key set, and each value's JSON
type must match.  Timings, throughputs, versions and timestamps are
expected to drift run-to-run and are deliberately NOT compared — the
check catches a bench being dropped, renamed, or silently changing its
report shape, without making CI flaky on runner speed.

``--compare OLD.json NEW.json [--max-slowdown R]`` is a second mode
that DOES look at timings: it matches entries by id across two bench
documents and fails when any matched entry's ``new_s`` regressed by
more than the allowed ratio (default 1.25).  Entries whose ``params``
differ between the documents are skipped with a note (a bench that
changed its workload is not a regression), as are entries present on
only one side.  CI runs this against the committed reference to catch
order-of-magnitude performance regressions while the generous ratio
absorbs runner noise.
"""

from __future__ import annotations

import json
import sys

#: Values whose *presence* matters but whose content is run-dependent.
_VOLATILE_TOP_LEVEL = {"version", "python", "numpy", "timestamp"}


def _json_type(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    return type(value).__name__


def _compatible(a, b) -> bool:
    """Whether two values agree in JSON type (null matches number: a
    bench with no reference timing reports ``old_s: null``)."""
    ta, tb = _json_type(a), _json_type(b)
    return ta == tb or {ta, tb} == {"null", "number"}


def compare(reference: dict, candidate: dict) -> "list[str]":
    """Structural differences between two bench documents (empty = OK)."""
    problems = []
    ref_keys, cand_keys = set(reference), set(candidate)
    if ref_keys != cand_keys:
        problems.append(
            f"top-level keys differ: missing={sorted(ref_keys - cand_keys)} "
            f"extra={sorted(cand_keys - ref_keys)}")
    if reference.get("suite") != candidate.get("suite"):
        problems.append(
            f"suite differs: {reference.get('suite')!r} != "
            f"{candidate.get('suite')!r}")
    ref_entries = reference.get("entries") or []
    cand_entries = candidate.get("entries") or []
    ref_ids = [e.get("id") for e in ref_entries]
    cand_ids = [e.get("id") for e in cand_entries]
    if ref_ids != cand_ids:
        problems.append(f"entry ids differ: {ref_ids} != {cand_ids}")
        return problems
    for ref, cand in zip(ref_entries, cand_entries):
        eid = ref.get("id")
        rk, ck = set(ref), set(cand)
        if rk != ck:
            problems.append(
                f"entry {eid!r}: keys differ: missing={sorted(rk - ck)} "
                f"extra={sorted(ck - rk)}")
            continue
        for key in sorted(rk):
            if not _compatible(ref[key], cand[key]):
                problems.append(
                    f"entry {eid!r}: {key!r} changed type "
                    f"{_json_type(ref[key])} -> {_json_type(cand[key])}")
        if ref.get("params") and set(ref["params"]) != set(cand["params"]):
            problems.append(
                f"entry {eid!r}: params keys differ: "
                f"{sorted(ref['params'])} != {sorted(cand['params'])}")
    return problems


def compare_timings(reference: dict, candidate: dict,
                    max_slowdown: float) -> "tuple[list[str], list[str]]":
    """Timing regressions between two bench documents.

    Returns ``(problems, notes)``: a matched entry (same id, same
    ``params``) whose candidate ``new_s`` exceeds the reference's by
    more than ``max_slowdown``x is a problem; id/params mismatches are
    reported as informational notes only.
    """
    problems, notes = [], []
    ref_by_id = {e.get("id"): e for e in reference.get("entries") or []}
    cand_by_id = {e.get("id"): e for e in candidate.get("entries") or []}
    for eid in sorted(set(ref_by_id) - set(cand_by_id)):
        notes.append(f"entry {eid!r} only in reference; not compared")
    for eid in sorted(set(cand_by_id) - set(ref_by_id)):
        notes.append(f"entry {eid!r} only in candidate; not compared")
    for eid in sorted(set(ref_by_id) & set(cand_by_id)):
        ref, cand = ref_by_id[eid], cand_by_id[eid]
        if ref.get("params") != cand.get("params"):
            notes.append(f"entry {eid!r}: params changed; not compared")
            continue
        ref_s, cand_s = ref.get("new_s"), cand.get("new_s")
        if not isinstance(ref_s, (int, float)) or isinstance(ref_s, bool) \
                or not isinstance(cand_s, (int, float)) \
                or isinstance(cand_s, bool) or ref_s <= 0:
            notes.append(f"entry {eid!r}: no comparable new_s timing")
            continue
        ratio = cand_s / ref_s
        if ratio > max_slowdown:
            problems.append(
                f"entry {eid!r}: new_s regressed {ref_s:.4g}s -> "
                f"{cand_s:.4g}s ({ratio:.2f}x > {max_slowdown:.2f}x)")
        else:
            notes.append(f"entry {eid!r}: {ref_s:.4g}s -> {cand_s:.4g}s "
                         f"({ratio:.2f}x) OK")
    return problems, notes


def main(argv: "list[str]") -> int:
    require: "list[str]" = []
    paths: "list[str]" = []
    compare_mode = False
    max_slowdown = 1.25
    it = iter(argv)
    for arg in it:
        if arg == "--require":
            value = next(it, None)
            if value is None:
                print("--require needs a comma-separated id list",
                      file=sys.stderr)
                return 2
            require.extend(x for x in value.split(",") if x)
        elif arg == "--compare":
            compare_mode = True
        elif arg == "--max-slowdown":
            value = next(it, None)
            try:
                max_slowdown = float(value)
            except (TypeError, ValueError):
                print("--max-slowdown needs a positive ratio",
                      file=sys.stderr)
                return 2
            if max_slowdown <= 0:
                print("--max-slowdown needs a positive ratio",
                      file=sys.stderr)
                return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print("usage: python benchmarks/check_bench_schema.py "
              "[--require id1,id2] REFERENCE.json CANDIDATE.json\n"
              "       python benchmarks/check_bench_schema.py "
              "--compare [--max-slowdown R] OLD.json NEW.json",
              file=sys.stderr)
        return 2
    if compare_mode:
        with open(paths[0]) as fh:
            old = json.load(fh)
        with open(paths[1]) as fh:
            new = json.load(fh)
        problems, notes = compare_timings(old, new, max_slowdown)
        for note in notes:
            print(f"compare: {note}")
        for p in problems:
            print(f"TIMING REGRESSION: {p}", file=sys.stderr)
        if problems:
            return 1
        print(f"bench timings OK (max allowed slowdown "
              f"{max_slowdown:.2f}x)")
        return 0
    with open(paths[0]) as fh:
        reference = json.load(fh)
    with open(paths[1]) as fh:
        candidate = json.load(fh)
    problems = compare(reference, candidate)
    cand_ids = {e.get("id") for e in candidate.get("entries") or []}
    for rid in require:
        if rid not in cand_ids:
            problems.append(f"required entry id {rid!r} missing")
    for p in problems:
        print(f"SCHEMA DIFF: {p}", file=sys.stderr)
    if problems:
        return 1
    print(f"bench schema OK: {len(reference.get('entries') or [])} entries, "
          f"suite {reference.get('suite')!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
