"""E4 — Table 1 rows 6-8: insertion-only streaming storage.

Paper shape: ours stores ``O(k/eps^d + z)`` (additive z, matching the
lower bound); CPP19 stores ``O((k+z)/eps^d)`` (multiplicative 1/eps^d on
z); MK08 stores ``O(kz/eps)`` with only a constant-factor radius.
"""

from repro.experiments import format_table, streaming_insertion_rows


def test_e4_insertion_streaming(once):
    rows = once(
        streaming_insertion_rows,
        n=4000, eps_values=(1.0, 0.5), z_values=(8, 64),
    )
    print()
    print(format_table(rows, "E4: insertion-only streaming storage"))
    get = lambda alg, eps, z: next(
        r for r in rows
        if r.algorithm == alg and r.params["eps"] == eps and r.params["z"] == z
    )
    # z-dependence: CPP19's threshold is multiplied by 1/eps^d, ours is not
    assert (
        get("cpp19-stream", 0.5, 64).metrics["threshold"]
        > 4 * get("ours-stream", 0.5, 64).metrics["threshold"]
    )
    # ours stays within its paper threshold (Theorem 18)
    for r in rows:
        if r.algorithm == "ours-stream":
            assert r.metrics["stored"] <= r.metrics["threshold"]
