"""E15 — Figure 8: appendix geometry (Lemmas 37-41) numeric sweeps."""

from repro.experiments import format_table, geometry_rows


def test_e15_geometry(once):
    rows = once(geometry_rows)
    print()
    print(format_table(rows, "E15: appendix geometry"))
    for r in rows:
        assert r.metrics["lemma41_gap"] > 0, "Lemma 41 must hold strictly"
        assert r.metrics["claim38_ok"] == 1
        assert r.metrics["claim39_slack"] >= -1e-9
