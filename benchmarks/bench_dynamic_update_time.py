"""E18 — the §5 application: fully dynamic (3+eps)-approximate k-center
with outliers with update time independent of n.

Times a single insert (the per-update cost: O(log Delta) sketch-bucket
touches) and a query (greedy on the recovered coreset), and checks the
radius tracks an offline recomputation.
"""

import numpy as np

from repro import WeightedPointSet
from repro.core import charikar_greedy
from repro.streaming import DynamicKCenter
from repro.workloads import integer_workload


def _build(n=150):
    rng = np.random.default_rng(3)
    wl = integer_workload(n, 3, 6, 256, 2, rng=rng)
    algo = DynamicKCenter(3, 6, 1.0, 256, 2, rng=np.random.default_rng(4))
    for p in wl.points:
        algo.insert(p)
    return algo, wl


def test_e18_update_time(benchmark):
    algo, wl = _build()
    p = np.array([100, 100])

    def update_cycle():
        algo.insert(p)
        algo.delete(p)

    benchmark(update_cycle)
    live = WeightedPointSet.from_points(wl.points.astype(float))
    r_dyn = algo.radius()
    r_off = charikar_greedy(live, 3, 6).radius
    print(f"\nE18: dynamic radius {r_dyn:.3f} vs offline {r_off:.3f}")
    assert r_off / 3.5 <= r_dyn <= 3.5 * max(r_off, 1e-9) + 1e-9


def test_e18_query_time(benchmark):
    algo, wl = _build()
    r = benchmark.pedantic(algo.radius, rounds=3, iterations=1)
    print(f"\nE18: query radius {r:.3f} on coreset of "
          f"{len(algo.core.coreset())} cells")
    assert r > 0
