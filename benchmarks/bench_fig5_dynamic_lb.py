"""E7/E13 — Figure 5: the Omega((k/eps^d) log Delta + z) dynamic bound.

Mechanism: the multi-scale construction's required storage grows linearly
in ``log Delta`` (the ``g`` scales), and the scaled cross gadget is fatal
at every scale ``m*`` after the adversary's deletions.
"""

from repro.experiments import dynamic_lb_rows, format_table


def test_e7_dynamic_lower_bound(once):
    rows = once(dynamic_lb_rows, delta_values=(2**10, 2**12, 2**16))
    print()
    print(format_table(rows, "E7/E13: Theorem 28 adversary"))
    assert [r.metrics["g"] for r in rows] == sorted(r.metrics["g"] for r in rows)
    req = [r.metrics["required"] for r in rows]
    assert req == sorted(req) and req[-1] > req[0], "storage grows with log Delta"
    for r in rows:
        assert r.metrics["fatal"] == r.metrics["attacks"]
