"""E9 — coreset quality across every upper-bound algorithm.

The end-to-end recipe: build the coreset, solve on it, compare the radius
with solving on the full data.  All ratios must stay within the combined
approximation guarantee.
"""

from repro.experiments import coreset_quality_rows, format_table


def test_e9_quality(once):
    rows = once(coreset_quality_rows, n=1200)
    print()
    print(format_table(rows, "E9: end-to-end coreset quality"))
    for r in rows:
        # both radii come from the same 3-approximation; the coreset's eps
        # and the greedy slack bound the ratio in [1/(3(1+eps)), 3(1+eps)]
        assert 0.2 <= r.metrics["quality"] <= 5.0, r
