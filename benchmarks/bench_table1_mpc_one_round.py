"""E1 — Table 1 rows 1-2: randomized 1-round MPC, ours vs CPP19.

Paper shape: both need random distribution; ours avoids the ``1/eps^d``
factor on the outlier term, so the baseline's coordinator storage and
coreset size grow much faster in ``z``.
"""

from repro.experiments import format_table, mpc_one_round_rows


def test_e1_one_round_storage_vs_z(once):
    rows = once(mpc_one_round_rows, n=3000, z_values=(8, 32, 128))
    print()
    print(format_table(rows, "E1: randomized 1-round MPC, storage vs z"))
    ours = {r.params["z"]: r.metrics["coreset"] for r in rows if r.algorithm == "ours-1round"}
    base = {r.params["z"]: r.metrics["coreset"] for r in rows if r.algorithm == "cpp19-rand"}
    # the paper's win: baseline coreset blows up in z much faster than ours
    assert base[128] > 2 * ours[128]
