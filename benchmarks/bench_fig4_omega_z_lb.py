"""E12 — Figure 4: the Omega(z) lower bound on the line (Lemma 15).

Mechanism: with ``k+z`` unit-spaced points, dropping any point lets the
coreset report radius 0 after one more arrival while the true optimum is
1/2 — so all ``k+z`` points (hence Omega(z) storage) are mandatory.
"""

from repro.experiments import format_table, omega_z_lb_rows


def test_e12_omega_z_lower_bound(once):
    rows = once(omega_z_lb_rows)
    print()
    print(format_table(rows, "E12: Lemma 15 adversary"))
    for r in rows:
        assert r.metrics["exact_survived"] == 1
        assert r.metrics["fatal"] == r.metrics["attacks"]
