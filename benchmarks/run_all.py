"""Machine-readable core-kernel benchmark runner.

Times the three operations the kernels refactor targets — the Charikar
radius search, ``mbc_construction``, and one end-to-end two-round MPC
run — at fixed seeds, against the frozen pre-refactor reference
implementations where one exists
(:mod:`repro.core._greedy_reference`), and writes a JSON document so CI
can archive a perf trajectory across PRs::

    PYTHONPATH=src python benchmarks/run_all.py --json BENCH_core.json
    PYTHONPATH=src python benchmarks/run_all.py --quick --json BENCH_core.json

Each entry records ``{id, params, new_s, old_s, speedup}`` (``old_s`` /
``speedup`` are null for the MPC end-to-end run: the pre-refactor driver
is minutes-slow at benchmark sizes, so only the current timing is
tracked).  The float64 outputs of old and new paths are asserted
bit-identical before any timing is reported.

The ``*_scale_*`` entries form the scaling curve for the grid-pruned
candidate scans (n=10^5 and n=10^6, serial and ``decision_jobs=4``);
``--quick`` keeps every entry id (so CI can diff the schema) at reduced
sizes, and ``--assert-pruned`` fails the run unless the 10^5-scale
greedy actually took the pruned path and beat the dense decision
procedure by >= 2x.  ``grid_hierarchy_reuse`` isolates the persistent
geometry ladder (one hierarchy snap-reused across every guess) against
fresh per-guess grid builds at identical params in quick and full mode;
``--assert-hierarchy`` fails the run unless the reuse wins by >= 2x.
``mbc_scale_10m`` ingests the out-of-core ``ooc-clustered-10m`` store
(n=10^7 at full size) through the insertion-only session chunk by
chunk and records throughput plus the process peak RSS;
``--store-dir`` points the store cache at a persistent directory so
the generated stream is reused across runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np


def _instance(n: int, d: int = 2, seed: int = 0, wmax: int = 5):
    from repro.core.points import WeightedPointSet

    rng = np.random.default_rng(seed)
    pts = rng.random((n, d)) * 10.0
    return WeightedPointSet(pts, rng.integers(1, wmax, n))


def _timed(fn) -> "tuple[float, object]":
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def bench_charikar(quick: bool) -> dict:
    """Greedy(P, k, z) on the exact-candidate (pairwise) path."""
    from repro.core._greedy_reference import charikar_greedy_reference
    from repro.core.greedy import charikar_greedy

    n = 512 if quick else 2048
    k, z = 16, 64
    P = _instance(n)
    new_s, new_res = _timed(lambda: charikar_greedy(P, k, z))
    old_s, old_res = _timed(lambda: charikar_greedy_reference(P, k, z))
    assert new_res.radius == old_res.radius, "charikar parity violated"
    assert np.array_equal(new_res.centers_idx, old_res.centers_idx)
    return {
        "id": "charikar_greedy",
        "params": {"n": n, "k": k, "z": z, "d": 2, "seed": 0},
        "new_s": new_s,
        "old_s": old_s,
        "speedup": old_s / new_s,
    }


def bench_mbc(quick: bool) -> dict:
    """MBCConstruction with a supplied Greedy radius (isolates the
    absorption loop both implementations share the radius for)."""
    from repro.core._greedy_reference import greedy_absorb_reference
    from repro.core.mbc import mbc_construction
    from repro.core.metrics import get_metric

    n = 8000 if quick else 50000
    k, z, eps, radius = 8, 32, 0.1, 0.6
    P = _instance(n, wmax=2)
    met = get_metric(None)
    new_s, mbc = _timed(
        lambda: mbc_construction(P, k, z, eps, met, radius=radius)
    )
    old_s, old = _timed(
        lambda: greedy_absorb_reference(P, eps * radius / 3.0, met)
    )
    assert np.array_equal(mbc.coreset.points, old[0].points), "mbc parity violated"
    assert np.array_equal(mbc.coreset.weights, old[0].weights)
    return {
        "id": "mbc_construction",
        "params": {"n": n, "k": k, "z": z, "eps": eps, "radius": radius,
                   "d": 2, "seed": 0},
        "new_s": new_s,
        "old_s": old_s,
        "speedup": old_s / new_s,
    }


def bench_mpc_two_round(quick: bool) -> dict:
    """End-to-end Algorithm 2 (outlier guessing + local MBCs + final
    compression) on contiguously partitioned input."""
    from repro.mpc.partition import partition_contiguous
    from repro.mpc.two_round import two_round_coreset

    n, m = (2500, 5) if quick else (10000, 10)
    k, z, eps = 4, 8, 0.5
    P = _instance(n, wmax=2)
    parts = partition_contiguous(P, m)
    new_s, res = _timed(lambda: two_round_coreset(parts, k, z, eps))
    return {
        "id": "mpc_two_round",
        "params": {"n": n, "m": m, "k": k, "z": z, "eps": eps,
                   "d": 2, "seed": 0},
        "new_s": new_s,
        "old_s": None,
        "speedup": None,
        "coreset": len(res.coreset),
    }


def bench_serve_replay(quick: bool) -> dict:
    """Sustained point-update throughput through the session server.

    Self-hosts a `repro.serve` server and replays the clustered-baseline
    scenario over 32 concurrent sessions (insertion-only backend, binary
    wire, batched extends) — the serving acceptance number.  Always 32
    sessions, even under ``--quick``; only the stream length shrinks.
    """
    from repro.serve.replay import replay

    sessions, passes = 32, 4
    batch = 400 if quick else 2000
    report = replay(scenario="clustered-baseline", quick=quick, seed=0,
                    sessions=sessions, batch=batch, passes=passes,
                    backend="insertion-only", solve=False, reference=False)
    return {
        "id": "serve_replay",
        "params": {"scenario": "clustered-baseline", "sessions": sessions,
                   "threads": report["threads"], "batch": batch,
                   "passes": passes, "backend": "insertion-only",
                   "wire": report["wire"], "seed": 0},
        "new_s": report["stream_wall_s"],
        "old_s": None,
        "speedup": None,
        "total_points": report["total_points"],
        "points_per_s": report["points_per_s"],
        "extend_p95_s": report["latency"]["extend"]["p95_s"],
    }


def bench_charikar_scale_100k(quick: bool) -> dict:
    """Grid-pruned Greedy(P, k, z) at coreset-construction scale.

    ``new_s`` is the full pruned radius search.  A full *dense* search at
    these sizes is minutes-to-hours (``old_s`` is null); instead the
    dense-vs-pruned ratio is measured honestly on ONE decision at the
    winning guess — the guess the search actually pays for — with the
    two decision procedures asserted bit-identical first.  ``speedup``
    reports that per-decision ratio.
    """
    from repro.core.greedy import (
        _geometric_decision,
        _grid_decision,
        _grid_for_guess,
        charikar_greedy,
    )
    from repro.core.metrics import get_metric
    from repro.kernels import Workspace

    n = 50_000 if quick else 100_000
    k, z = 16, 100 if quick else 200
    P = _instance(n, wmax=3)
    met = get_metric(None)
    new_s, res = _timed(lambda: charikar_greedy(P, k, z, met))
    g = float(res.guess)
    grid = _grid_for_guess(P.points, g + 1e-9 * max(1.0, g))
    assert grid is not None, "grid must apply at benchmark sizes"
    pruned_s, pruned = _timed(
        lambda: _grid_decision(P, met, k, z, g, grid, Workspace())
    )
    dense_s, dense = _timed(
        lambda: _geometric_decision(P, met, k, z, g, workspace=Workspace())
    )
    assert pruned[0] == dense[0] and pruned[1] == dense[1], \
        "pruned/dense decision parity violated"
    assert np.array_equal(pruned[2], dense[2])
    return {
        "id": "charikar_greedy_scale_100k",
        "params": {"n": n, "k": k, "z": z, "d": 2, "seed": 0,
                   "mode": "single-decision-comparator"},
        "new_s": new_s,
        "old_s": None,
        "speedup": dense_s / pruned_s,
        "decision_dense_s": dense_s,
        "decision_pruned_s": pruned_s,
        "decision_guess": g,
        "path": res.path,
    }


def bench_charikar_scale_1m(quick: bool) -> dict:
    """Grid-pruned Greedy(P, k, z) at n=10^6 (the headline scale).

    No dense comparator at all: one dense decision alone is ~10^12
    distance evaluations (half a day on one core).  Records the pruned
    search wall time and the path provenance; ``--quick`` keeps the id
    with a reduced instance so CI can diff the schema.
    """
    from repro.core.greedy import charikar_greedy
    from repro.core.metrics import get_metric

    n, k, z = (50_000, 256, 1_000) if quick else (1_000_000, 1_024, 10_000)
    P = _instance(n, wmax=2)
    met = get_metric(None)
    new_s, res = _timed(lambda: charikar_greedy(P, k, z, met))
    return {
        "id": "charikar_greedy_scale_1m",
        "params": {"n": n, "k": k, "z": z, "d": 2, "seed": 0},
        "new_s": new_s,
        "old_s": None,
        "speedup": None,
        "radius": float(res.radius),
        "path": res.path,
    }


def bench_mbc_scale_100k(quick: bool) -> dict:
    """MBCConstruction (supplied radius) at 10^5 points — the gridded
    absorption loop against the frozen pre-refactor reference."""
    from repro.core._greedy_reference import greedy_absorb_reference
    from repro.core.mbc import mbc_construction
    from repro.core.metrics import get_metric

    n = 20_000 if quick else 100_000
    k, z, eps, radius = 8, 32, 0.3, 2.0
    P = _instance(n, wmax=2)
    met = get_metric(None)
    new_s, mbc = _timed(
        lambda: mbc_construction(P, k, z, eps, met, radius=radius)
    )
    old_s, old = _timed(
        lambda: greedy_absorb_reference(P, eps * radius / 3.0, met)
    )
    assert np.array_equal(mbc.coreset.points, old[0].points), "mbc parity violated"
    assert np.array_equal(mbc.coreset.weights, old[0].weights)
    return {
        "id": "mbc_construction_scale_100k",
        "params": {"n": n, "k": k, "z": z, "eps": eps, "radius": radius,
                   "d": 2, "seed": 0},
        "new_s": new_s,
        "old_s": old_s,
        "speedup": old_s / new_s,
    }


def bench_mbc_scale_1m(quick: bool) -> dict:
    """MBCConstruction (supplied radius) at n=10^6 — absorption must
    stay interactive at a million points (no reference timing: the
    pre-refactor loop is O(reps * n) full scans, minutes at this n)."""
    from repro.core.mbc import mbc_construction
    from repro.core.metrics import get_metric

    n = 50_000 if quick else 1_000_000
    k, z, eps, radius = 8, 32, 0.3, 2.0
    P = _instance(n, wmax=2)
    met = get_metric(None)
    new_s, mbc = _timed(
        lambda: mbc_construction(P, k, z, eps, met, radius=radius)
    )
    return {
        "id": "mbc_construction_scale_1m",
        "params": {"n": n, "k": k, "z": z, "eps": eps, "radius": radius,
                   "d": 2, "seed": 0},
        "new_s": new_s,
        "old_s": None,
        "speedup": None,
        "coreset": len(mbc.coreset),
    }


def bench_grid_hierarchy_reuse(quick: bool) -> dict:
    """Geometry cost: one persistent hierarchy vs a fresh grid per guess.

    Times ONLY the geometry construction both strategies pay for the
    same realistic guess ladder (the ~12 cutoffs a geometric radius
    search probes): ``old_s`` builds a fresh per-guess ``PointGrid`` for
    every cutoff (what ``charikar_greedy`` did before the hierarchy);
    ``new_s`` builds one :class:`~repro.geometry.PointGridHierarchy` and
    snaps every cutoff onto it (what it does now).  Same params in quick
    and full mode — CI asserts the reuse win on every run
    (``--assert-hierarchy``).
    """
    from repro.core.greedy import _grid_for_guess
    from repro.geometry import PointGridHierarchy

    n, d, seed = 200_000, 2, 0
    P = _instance(n, d=d, seed=seed, wmax=2)
    pts = P.points
    # replay the search's probe sequence: bisection over the exponent
    # ladder lo*(1+tol)^i with lo = hi/(4n), converging on the k-center
    # radius of this instance (~1.6 for k=16 on uniform [0,10]^2) — the
    # probes spread early and cluster near the answer, exactly the
    # workload the ladder amortizes
    hi = 14.0
    lo = hi / (4.0 * n)
    tol = 0.05
    m = int(np.ceil(np.log(hi / lo) / np.log1p(tol)))
    target = int(round(np.log(1.6 / lo) / np.log1p(tol)))
    lo_e, hi_e, guesses = 0, m, []
    while lo_e < hi_e:
        mid = (lo_e + hi_e) // 2
        guesses.append(lo * (1.0 + tol) ** mid)
        if mid < target:
            lo_e = mid + 1
        else:
            hi_e = mid

    def rebuild():
        grids = [_grid_for_guess(pts, g * (1.0 + 1e-9)) for g in guesses]
        assert all(gr is not None for gr in grids)

    def reuse():
        h = PointGridHierarchy(pts, lo * (1.0 + 1e-6))
        grids = [h.grid_for(g) for g in guesses]
        assert all(gr is not None for gr in grids)
        return h

    old_s, _ = _timed(rebuild)
    new_s, h = _timed(reuse)
    return {
        "id": "grid_hierarchy_reuse",
        "params": {"n": n, "d": d, "seed": seed, "guesses": len(guesses)},
        "new_s": new_s,
        "old_s": old_s,
        "speedup": old_s / new_s,
        "direct_builds": h.direct_builds,
        "derived_builds": h.derived_builds,
    }


def bench_charikar_scale_1m_mc(quick: bool) -> dict:
    """The headline search with sharded decisions (``decision_jobs=4``).

    Same instance as ``charikar_greedy_scale_1m``; the only change is
    the thread fan-out, so the two entries read together as the
    multi-core scaling figure.  The result is asserted bit-identical to
    the serial run's radius/centers at quick sizes (full sizes would
    double the bench; the parity suite owns that claim).  Records the
    runner's core count so a 1-core runner's honest-but-flat number is
    not mistaken for a scaling regression.
    """
    import os

    from repro.core.greedy import charikar_greedy
    from repro.core.metrics import get_metric

    n, k, z = (50_000, 256, 1_000) if quick else (1_000_000, 1_024, 10_000)
    jobs = 4
    P = _instance(n, wmax=2)
    met = get_metric(None)
    new_s, res = _timed(
        lambda: charikar_greedy(P, k, z, met, decision_jobs=jobs)
    )
    if quick:
        serial = charikar_greedy(P, k, z, met)
        assert serial.radius == res.radius, "sharded parity violated"
        assert np.array_equal(serial.centers_idx, res.centers_idx)
    return {
        "id": "charikar_greedy_scale_1m_mc",
        "params": {"n": n, "k": k, "z": z, "d": 2, "seed": 0,
                   "decision_jobs": jobs},
        "new_s": new_s,
        "old_s": None,
        "speedup": None,
        "radius": float(res.radius),
        "path": res.path,
        "cores": os.cpu_count(),
        "decision_shards": res.stats.get("decision_shards"),
        "sharded_scans": res.stats.get("sharded_scans"),
    }


def bench_mbc_scale_10m(quick: bool) -> dict:
    """Out-of-core ingest at n=10^7: the ``ooc-clustered-10m`` stream
    served from its memory-mapped on-disk :class:`~repro.store.PointStore`
    into the insertion-only session, one 65536-row chunk resident at a
    time (the PR-10 headline — ingest never materializes the stream).

    ``peak_rss_mb`` is the process-lifetime ``ru_maxrss`` at the end of
    this bench — an upper bound that includes earlier benches in the
    same run; the strict <2 GB out-of-core guard lives in
    ``tests/test_out_of_core.py`` in a fresh subprocess.  The cached
    store under ``--store-dir`` (default ``$REPRO_DATA_DIR``) is
    generated chunk-wise on first use and reused after.  ``--quick``
    keeps the id at the scenario's quick size (n=4*10^4).
    """
    import resource

    from repro.api import KCenterSession
    from repro.scenarios import get_scenario

    inst = get_scenario("ooc-clustered-10m").make(quick=quick, seed=0)
    sess = KCenterSession(inst.spec, backend="insertion-only")
    n = inst.n
    new_s, _ = _timed(lambda: sess.extend(inst.source))
    sol = sess.solve()
    peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "id": "mbc_scale_10m",
        "params": {"scenario": "ooc-clustered-10m", "n": n,
                   "chunk_rows": inst.chunk_rows,
                   "backend": "insertion-only", "d": 2, "seed": 0},
        "new_s": new_s,
        "old_s": None,
        "speedup": None,
        "points_per_s": n / new_s,
        "coreset": sol.coreset_size,
        "radius": float(sol.radius),
        "peak_rss_mb": peak_mb,
    }


BENCHES = (bench_charikar, bench_mbc, bench_mpc_two_round,
           bench_serve_replay, bench_charikar_scale_100k,
           bench_charikar_scale_1m, bench_charikar_scale_1m_mc,
           bench_grid_hierarchy_reuse, bench_mbc_scale_100k,
           bench_mbc_scale_1m, bench_mbc_scale_10m)


def main(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/run_all.py",
        description="Time the core kernels against the frozen pre-refactor "
                    "reference and emit machine-readable JSON.",
    )
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the results document to PATH")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes (CI smoke; seconds not minutes)")
    parser.add_argument("--assert-pruned", action="store_true",
                        help="fail unless the scaling bench took the "
                             "grid-pruned path and its measured "
                             "per-decision dense/pruned ratio is >= 2x")
    parser.add_argument("--assert-hierarchy", action="store_true",
                        help="fail unless the persistent hierarchy's "
                             "geometry cost beats fresh per-guess grid "
                             "builds by >= 2x at n=2*10^5")
    parser.add_argument("--store-dir", metavar="DIR", default=None,
                        help="directory for cached on-disk point stores "
                             "(sets REPRO_DATA_DIR for the out-of-core "
                             "benches; default: ./.repro-data)")
    args = parser.parse_args(argv)

    if args.store_dir:
        os.environ["REPRO_DATA_DIR"] = args.store_dir

    import repro

    entries = []
    for bench in BENCHES:
        entry = bench(args.quick)
        entries.append(entry)
        speed = (
            f"{entry['speedup']:.2f}x vs pre-refactor"
            if entry["speedup"] is not None
            else "(no reference timing)"
        )
        if "points_per_s" in entry:
            speed = f"{entry['points_per_s']:,.0f} points/s"
        if "decision_dense_s" in entry:
            speed = f"{entry['speedup']:.2f}x per-decision vs dense"
        print(f"{entry['id']:<20} new={entry['new_s']:.3f}s  {speed}")

    if args.assert_pruned:
        scale = next(e for e in entries
                     if e["id"] == "charikar_greedy_scale_100k")
        if scale["path"] != "grid":
            print(f"ASSERT-PRUNED: path={scale['path']!r}, expected 'grid'",
                  file=sys.stderr)
            return 1
        if scale["speedup"] < 2.0:
            print(f"ASSERT-PRUNED: dense/pruned per-decision ratio "
                  f"{scale['speedup']:.2f}x < 2x", file=sys.stderr)
            return 1
        print(f"assert-pruned OK: path=grid, "
              f"decision speedup {scale['speedup']:.1f}x")

    if args.assert_hierarchy:
        reuse = next(e for e in entries if e["id"] == "grid_hierarchy_reuse")
        if reuse["speedup"] < 2.0:
            print(f"ASSERT-HIERARCHY: reuse/rebuild geometry ratio "
                  f"{reuse['speedup']:.2f}x < 2x", file=sys.stderr)
            return 1
        print(f"assert-hierarchy OK: geometry reuse "
              f"{reuse['speedup']:.1f}x over per-guess rebuilds "
              f"({reuse['direct_builds']} direct + "
              f"{reuse['derived_builds']} derived levels)")

    doc = {
        "suite": "core-kernels",
        "quick": bool(args.quick),
        "version": repro.__version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "entries": entries,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
