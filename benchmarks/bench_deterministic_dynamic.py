"""E19 — the §5 discussion realized: deterministic dynamic coreset.

Compares the Vandermonde-based deterministic sketch against the
randomized Algorithm 5 on the same stream: identical recovered weights,
bit-for-bit reproducibility, and log-Delta storage shape.
"""

import numpy as np

from repro.experiments import Row, format_table
from repro.streaming import DeterministicDynamicCoreset, DynamicCoreset
from repro.workloads import integer_workload


def _run():
    rows = []
    for delta in (64, 256, 1024):
        rng = np.random.default_rng(0)
        wl = integer_workload(120, 2, 4, delta, 2, rng=rng)
        det = DeterministicDynamicCoreset(2, 4, 1.0, delta, 2, s_override=64)
        ran = DynamicCoreset(2, 4, 1.0, delta, 2, rng=np.random.default_rng(1))
        for p in wl.points:
            det.insert(p)
            ran.insert(p)
        for p in wl.points[:50]:
            det.delete(p)
            ran.delete(p)
        cs_d, cs_r = det.coreset(), ran.coreset()
        rows.append(Row(
            "E19", "vandermonde-det", {"Delta": delta},
            {
                "storage_cells": det.storage_cells,
                "coreset": len(cs_d),
                "weight": cs_d.total_weight,
                "weight_matches_randomized": int(cs_d.total_weight == cs_r.total_weight),
            },
        ))
        rows.append(Row(
            "E19", "algorithm5-rand", {"Delta": delta},
            {"storage_cells": ran.storage_cells, "coreset": len(cs_r),
             "weight": cs_r.total_weight},
        ))
    return rows


def test_e19_deterministic_dynamic(once):
    rows = once(_run)
    print()
    print(format_table(rows, "E19: deterministic vs randomized dynamic sketch"))
    det = [r for r in rows if r.algorithm == "vandermonde-det"]
    for r in det:
        assert r.metrics["weight"] == 70  # 120 - 50 live points, exactly
        assert r.metrics["weight_matches_randomized"] == 1
    # log-Delta storage growth
    cells = [r.metrics["storage_cells"] for r in det]
    assert cells[0] < cells[1] < cells[2]
    assert cells[2] / cells[0] < 1024 / 64


def test_e19_bit_determinism(benchmark):
    rng = np.random.default_rng(3)
    pts = rng.integers(1, 257, size=(60, 2))

    def build_and_decode():
        d = DeterministicDynamicCoreset(2, 3, 1.0, 256, 2, s_override=48)
        for p in pts:
            d.insert(p)
        cs = d.coreset()
        return cs.points.tobytes(), cs.weights.tobytes()

    first = build_and_decode()
    second = benchmark.pedantic(build_and_decode, rounds=1, iterations=1)
    assert first == second
